"""Step IV: triangulation completion.

The CDM is planar but may contain faces with more than three sides
(Fig. 1(e)).  Landmarks therefore attempt to connect to nearby landmarks
they are not yet connected to, by sending a connection packet along the
shortest boundary path; a packet is dropped when it would produce a
crossing edge, and surviving packets add a virtual edge (whose path nodes
are marked in turn).

Three implementation refinements over the paper's one-paragraph
description, all needed to reach its stated goal ("adds all possible
virtual edges to divide polygons into triangles"):

* **Candidate set.**  The paper sends packets only between CDG-adjacent
  landmarks.  Hop-based Voronoi cells are coarse, so polygon diagonals are
  frequently not CDG-adjacent and the polygons of Fig. 1(e) could never be
  split.  Candidates here are all landmark pairs within ``candidate_radius``
  hops (default ``2k``), ordered by (hop distance, IDs) so short diagonals
  win.
* **Endpoint-aware crossing test.**  A marked intermediate node only blocks
  a packet when the mark belongs to an edge between two landmarks *both*
  different from the packet's endpoints -- edges sharing an endpoint cannot
  cross.  Blocking on any mark (the literal reading) rejects nearly every
  diagonal, because accepted CDM paths quickly mark most boundary nodes.
* **Dilated marks.**  Marks extend to the one-hop boundary neighbors of
  path nodes.  Shortest paths between nearby landmarks are only a few nodes
  long, so genuinely crossing edges often have node-disjoint paths; the
  one-hop dilation is what makes the mark test a reliable crossing proxy.

Additionally a packet routed *through another landmark* is always dropped:
the resulting edge would pass through a mesh vertex.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from repro.network.graph import NetworkGraph
from repro.surface.cdm import CDMResult
from repro.surface.mesh import Edge, edge_key

#: node -> set of landmark edges whose realizing path covers (or neighbors)
#: the node.
MarkMap = Dict[int, Set[Edge]]


def _mark_path(
    marks: MarkMap,
    edge: Edge,
    path: List[int],
    graph: NetworkGraph,
    members: Set[int],
) -> None:
    """Record that ``path`` realizes ``edge``, with one-hop dilation."""
    covered = set(path[1:-1])
    dilated = set(covered)
    for node in sorted(covered):
        dilated.update(int(v) for v in graph.neighbors(node) if int(v) in members)
    for node in sorted(dilated):
        marks[node].add(edge)


def _blocked(marks: MarkMap, path: List[int], i: int, j: int) -> bool:
    """Whether a connection packet from ``i`` to ``j`` must be dropped."""
    for node in path[1:-1]:
        for a, b in marks[node]:
            if a not in (i, j) and b not in (i, j):
                return True
    return False


def candidate_pairs(
    graph: NetworkGraph,
    members: Set[int],
    landmarks: List[int],
    candidate_radius: int,
) -> Dict[Edge, int]:
    """Landmark pairs within ``candidate_radius`` hops, with hop distances."""
    landmark_set = set(landmarks)
    pairs: Dict[Edge, int] = {}
    for landmark in sorted(landmarks):
        hops = graph.bfs_hops([landmark], within=members, max_hops=candidate_radius)
        for other, dist in hops.items():
            if other != landmark and other in landmark_set:
                key = edge_key(landmark, other)
                if key not in pairs or dist < pairs[key]:
                    pairs[key] = dist
    return pairs


def complete_triangulation(
    graph: NetworkGraph,
    group: Iterable[int],
    landmarks: List[int],
    cdm: CDMResult,
    *,
    candidate_radius: int,
) -> Tuple[Set[Edge], Dict[Edge, List[int]]]:
    """Add non-crossing virtual edges until no more can be placed.

    Parameters
    ----------
    graph:
        Full network connectivity.
    group:
        Boundary nodes of the surface under construction.
    landmarks:
        Elected landmarks of the group.
    cdm:
        Step III output: already-connected edges and their paths.
    candidate_radius:
        Maximum hop distance between landmark pairs considered for new
        edges; the pipeline passes ``2k``.

    Returns
    -------
    (edges, paths)
        The augmented edge set and path map.
    """
    members: Set[int] = set(int(g) for g in group)
    landmark_set = set(landmarks)
    edges: Set[Edge] = set(cdm.edges)
    paths: Dict[Edge, List[int]] = dict(cdm.paths)

    marks: MarkMap = defaultdict(set)
    for edge, path in cdm.paths.items():
        _mark_path(marks, edge, path, graph, members)

    pairs = candidate_pairs(graph, members, landmarks, candidate_radius)
    order = sorted(
        (key for key in pairs if key not in edges),
        key=lambda key: (pairs[key], key),
    )
    for i, j in order:
        path = graph.shortest_path(i, j, within=members)
        if path is None:
            continue
        if any(node in landmark_set for node in path[1:-1]):
            continue
        if _blocked(marks, path, i, j):
            continue
        key = edge_key(i, j)
        edges.add(key)
        paths[key] = path
        _mark_path(marks, key, path, graph, members)
    return edges, paths
