"""Shared fixtures: small deterministic networks reused across the suite.

Session-scoped fixtures keep the expensive artifacts (network generation,
full detection) computed once; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BoundaryDetector,
    DeploymentConfig,
    generate_network,
    one_hole_scenario,
    sphere_scenario,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the checked-in campaign golden tables instead of "
        "byte-comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run should rewrite goldens rather than compare."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def sphere_network():
    """A small connected sphere-scenario network (Fig. 10 style)."""
    return generate_network(
        sphere_scenario(),
        DeploymentConfig(
            n_surface=400, n_interior=800, target_degree=26, seed=5
        ),
        scenario="sphere",
    )


@pytest.fixture(scope="session")
def one_hole_network():
    """A small network with one internal hole (Fig. 7 style)."""
    return generate_network(
        one_hole_scenario(),
        DeploymentConfig(
            n_surface=500, n_interior=800, target_degree=28, seed=6
        ),
        scenario="one_hole",
    )


@pytest.fixture(scope="session")
def sphere_detection(sphere_network):
    """Boundary detection (true coordinates) on the sphere network."""
    return BoundaryDetector().detect(sphere_network)


@pytest.fixture(scope="session")
def one_hole_detection(one_hole_network):
    """Boundary detection (true coordinates) on the one-hole network."""
    return BoundaryDetector().detect(one_hole_network)
