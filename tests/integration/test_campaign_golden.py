"""Golden-result regression tests for the campaign manager.

Each test runs a small pinned campaign spec (committed next to this file
under ``tests/golden/``) through a fresh job store and byte-compares the
rendered tables against the checked-in golden.  Any change to network
generation, the detection pipeline, the fault simulator, the
identity-derived cell substreams, or the table renderers shows up here as
a byte diff.

To intentionally re-pin after such a change::

    PYTHONPATH=src python -m pytest tests/integration/test_campaign_golden.py \
        --update-goldens
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.evaluation.campaign import load_spec
from repro.service.campaign import run_campaign
from repro.service.jobstore import JobStore

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def run_golden_campaign(tmp_path, name: str, update: bool) -> None:
    """Run ``tests/golden/<name>.json``; compare (or rewrite) its golden."""
    spec = load_spec(GOLDEN_DIR / f"{name}.json")
    store = JobStore(tmp_path / "store")
    report = run_campaign(store, spec)
    assert report.dead == 0
    assert report.tables is not None
    golden = GOLDEN_DIR / f"{name}.golden.txt"
    if update:
        golden.write_text(report.tables, encoding="utf-8")
        pytest.skip(f"rewrote {golden}")
    assert golden.exists(), (
        f"golden {golden} missing -- run with --update-goldens to create it"
    )
    assert report.tables == golden.read_text(encoding="utf-8")


def test_error_sweep_golden(tmp_path, update_goldens):
    """Fig. 1(g)-style error sweep, two levels x two config variants."""
    run_golden_campaign(tmp_path, "error_sweep_small", update_goldens)


def test_robustness_golden(tmp_path, update_goldens):
    """Robustness grid: two loss rates, raw and reliable modes."""
    run_golden_campaign(tmp_path, "robustness_small", update_goldens)
