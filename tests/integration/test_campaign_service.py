"""Campaign-over-job-service properties: memoization, resume, invariance.

The claims under test (ISSUE 8 acceptance criteria):

* re-running a campaign against the same store executes **zero** new
  cells -- verified against the job store's append-only transition logs,
  not just the report counters;
* a campaign interrupted at a job boundary and re-run converges to the
  same final ``canonical_state()`` and byte-identical tables as an
  uninterrupted run;
* worker count does not change the outcome;
* a driver SIGKILLed mid-campaign converges after a re-run to the same
  tables as an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.evaluation.campaign import (
    CELL_KIND_FAULT,
    CampaignSpec,
    execute_cell,
    expand,
)
from repro.service.campaign import (
    CampaignIncomplete,
    campaign_status,
    cell_job_spec,
    ensure_submitted,
    render_from_store,
    run_campaign,
)
from repro.service.jobstore import JobSpec, JobStore
from repro.service.worker import Worker, execute_job

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

SPEC = CampaignSpec(
    name="t-service",
    kind="robustness",
    scenarios=("sphere",),
    seeds=(0,),
    n_surface=60,
    n_interior=100,
    target_degree=12.0,
    theta=10,
    loss_rates=(0.0, 0.4),
    crash_fractions=(0.0,),
    modes=("raw",),
)


def leased_events(store: JobStore, job_id: str) -> int:
    """Count claim transitions in the job's append-only log."""
    log_path = store.job_dir(job_id) / "log.jsonl"
    if not log_path.exists():
        return 0
    count = 0
    with open(log_path, "r", encoding="utf-8") as fh:
        for line in fh:
            if json.loads(line)["event"] == "leased":
                count += 1
    return count


class TestMemoization:
    def test_rerun_executes_zero_cells(self, tmp_path):
        store = JobStore(tmp_path / "store")
        first = run_campaign(store, SPEC)
        assert first.executed == len(expand(SPEC)) == first.done
        claims_after_first = {
            job_id: leased_events(store, job_id) for job_id in first.job_ids
        }
        assert all(count == 1 for count in claims_after_first.values())

        second = run_campaign(store, SPEC)
        assert second.submitted == 0
        assert second.executed == 0
        assert second.reused == len(expand(SPEC))
        # The store log proves nothing ran: no new claim transitions.
        assert {
            job_id: leased_events(store, job_id) for job_id in second.job_ids
        } == claims_after_first
        assert second.tables == first.tables

    def test_overlapping_campaign_reuses_shared_cells(self, tmp_path):
        store = JobStore(tmp_path / "store")
        run_campaign(store, SPEC)
        wider = CampaignSpec.from_dict(
            {**SPEC.as_dict(), "loss_rates": [0.0, 0.4, 0.2]}
        )
        report = run_campaign(store, wider)
        # Only the genuinely new (loss=0.2) cell executed.
        assert report.submitted == 1
        assert report.executed == 1
        assert report.reused == 2

    def test_campaign_metrics_recorded(self, tmp_path):
        store = JobStore(tmp_path / "store")
        run_campaign(store, SPEC)
        counters = store.metrics.as_dict()["counters"]
        assert counters["campaign.runs"] == 1
        assert counters["campaign.cells.total"] == len(expand(SPEC))
        assert counters["campaign.cells.executed"] == len(expand(SPEC))


class TestResume:
    def test_job_boundary_interruption_converges_exactly(self, tmp_path):
        uninterrupted = JobStore(tmp_path / "a")
        reference = run_campaign(uninterrupted, SPEC)

        interrupted = JobStore(tmp_path / "b")
        # Simulate a driver death after one cell: submit everything, let a
        # worker process exactly one job, then abandon the run.
        ensure_submitted(interrupted, SPEC)
        assert Worker(interrupted, "w-dying").run(max_jobs=1) == 1
        status = campaign_status(interrupted, SPEC)
        assert status.counts() == {"done": 1, "queued": 1}
        with pytest.raises(CampaignIncomplete):
            render_from_store(interrupted, SPEC)

        resumed = run_campaign(interrupted, SPEC)
        assert resumed.submitted == 0
        assert resumed.reused == 2
        assert resumed.executed == 1  # only the abandoned cell
        assert resumed.tables == reference.tables
        assert interrupted.canonical_state() == uninterrupted.canonical_state()

    def test_status_slices_track_progress(self, tmp_path):
        store = JobStore(tmp_path / "store")
        status = campaign_status(store, SPEC)
        assert status.counts() == {"unsubmitted": 2}
        assert not status.complete
        ensure_submitted(store, SPEC)
        assert Worker(store, "w0").run(max_jobs=1) == 1
        slices = campaign_status(store, SPEC).slice_counts()
        assert slices["loss"]["0.0"] == {"done": 1}
        assert slices["loss"]["0.4"] == {"queued": 1}
        assert slices["scenario"]["sphere"] == {"done": 1, "queued": 1}


class TestInvariance:
    def test_worker_count_invariance(self, tmp_path):
        serial = JobStore(tmp_path / "serial")
        threaded = JobStore(tmp_path / "threaded")
        one = run_campaign(serial, SPEC, workers=1)
        two = run_campaign(threaded, SPEC, workers=2)
        assert one.tables == two.tables
        assert serial.canonical_state() == threaded.canonical_state()

    def test_cell_order_invariance(self, tmp_path):
        """Submission order changes job ids, never cell results."""
        fwd_store = JobStore(tmp_path / "fwd")
        rev_store = JobStore(tmp_path / "rev")
        reversed_spec = CampaignSpec.from_dict(
            {**SPEC.as_dict(), "loss_rates": [0.4, 0.0]}
        )
        fwd = run_campaign(fwd_store, SPEC)
        rev = run_campaign(rev_store, reversed_spec)
        fwd_by_loss = {
            cell.axes["loss"]: fwd_store.load(job_id).result
            for cell, job_id in zip(expand(SPEC), fwd.job_ids)
        }
        rev_by_loss = {
            cell.axes["loss"]: rev_store.load(job_id).result
            for cell, job_id in zip(expand(reversed_spec), rev.job_ids)
        }
        assert fwd_by_loss == rev_by_loss


class TestKillMidCampaign:
    def test_sigkill_then_rerun_converges_to_same_tables(self, tmp_path):
        spec_path = GOLDEN_DIR / "robustness_small.json"
        golden = (GOLDEN_DIR / "robustness_small.golden.txt").read_text(
            encoding="utf-8"
        )
        root = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent.parent / "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "campaign",
                "run",
                "--spec",
                str(spec_path),
                "--root",
                str(root),
                "--lease-ttl",
                "2",
                "--no-output",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(1.0)  # mid-campaign: some cells done, some not
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        store = JobStore(root)
        spec = CampaignSpec.from_dict(
            json.loads(spec_path.read_text(encoding="utf-8"))
        )
        # The rerun adopts whatever the killed driver durably reached
        # (including a possibly still-leased job, reaped after its 2 s TTL)
        # and converges to the exact golden tables.
        report = run_campaign(store, spec, lease_ttl=2.0)
        assert report.dead == 0
        assert report.submitted + report.reused == len(expand(spec))
        assert report.tables == golden


class TestExecuteJobDispatch:
    def test_cell_job_runs_through_worker_and_caches(self, tmp_path):
        store = JobStore(tmp_path / "store")
        cell = expand(SPEC)[0]
        spec = cell_job_spec(cell)
        assert spec.kind == CELL_KIND_FAULT
        record = store.submit(spec)
        assert not record.cache_hit
        Worker(store, "w0").run(exit_when_idle=True)
        done = store.load(record.job_id)
        assert done.state == "done"
        assert done.result == execute_cell(cell.kind, cell.params)
        # Same semantic content -> submit-time cache hit, born done.
        twin = store.submit(
            JobSpec(kind=cell.kind, cell=dict(cell.params), test_delay_seconds=0.0)
        )
        assert twin.job_id != record.job_id
        assert twin.cache_hit and twin.state == "done"
        assert twin.result == done.result

    def test_unknown_cell_kind_dead_letters(self, tmp_path):
        store = JobStore(tmp_path / "store")
        record = store.submit(
            JobSpec(kind="eval.mystery", cell={}), max_attempts=1
        )
        Worker(store, "w0").run(exit_when_idle=True)
        dead = store.load(record.job_id)
        assert dead.state == "dead"
        assert dead.error["type"] == "ValueError"

    def test_cell_payload_drives_cache_key(self):
        base = cell_job_spec(expand(SPEC)[0])
        other = cell_job_spec(expand(SPEC)[1])
        assert base.cache_key() != other.cache_key()
        assert base.cache_key() != JobSpec().cache_key()

    def test_direct_execute_job_matches_execute_cell(self):
        cell = expand(SPEC)[0]
        assert execute_job(cell_job_spec(cell)) == execute_cell(
            cell.kind, cell.params
        )
