"""Statistical regression pins: detection quality bands across seeds.

These tests run detection on several small fresh deployments and assert
the quality bands EXPERIMENTS.md reports.  They guard against silent
regressions that a single-seed test could miss (or pass by luck).
"""

import numpy as np
import pytest

from repro import BoundaryDetector, DeploymentConfig, generate_network, sphere_scenario
from repro.evaluation.metrics import evaluate_detection

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def seeded_runs():
    runs = []
    for seed in SEEDS:
        network = generate_network(
            sphere_scenario(),
            DeploymentConfig(
                n_surface=250, n_interior=450, target_degree=28, seed=seed
            ),
            scenario="sphere",
        )
        result = BoundaryDetector().detect(network)
        runs.append((network, result, evaluate_detection(network, result)))
    return runs


class TestQualityBands:
    def test_correct_band_across_seeds(self, seeded_runs):
        for _, _, stats in seeded_runs:
            assert stats.correct_pct > 0.97, stats.as_row()

    def test_missing_band_across_seeds(self, seeded_runs):
        for _, _, stats in seeded_runs:
            assert stats.missing_pct < 0.03, stats.as_row()

    def test_mistaken_band_across_seeds(self, seeded_runs):
        """The discretization band: bounded, and never dominant."""
        for _, _, stats in seeded_runs:
            assert stats.mistaken_pct < 0.5, stats.as_row()

    def test_single_outer_group_across_seeds(self, seeded_runs):
        for _, result, _ in seeded_runs:
            assert len(result.groups) == 1

    def test_mistaken_always_hug_boundary(self, seeded_runs):
        from repro.evaluation.metrics import mistaken_hop_distribution

        for network, result, _ in seeded_runs:
            buckets = mistaken_hop_distribution(network, result)
            total = sum(buckets.values())
            if total:
                near = buckets[0] + buckets[1] + buckets[2]
                assert near / total > 0.9
