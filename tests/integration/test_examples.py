"""Smoke tests: every example script runs to completion.

Examples are executed in-process with reduced deployment sizes would be
intrusive, so they run as subprocesses with their shipped parameters; each
one is laptop-sized by construction.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart.py",
    "underwater_survey.py",
    "hole_monitoring.py",
    "pipe_inspection.py",
    "surface_tools_demo.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(EXAMPLES_DIR / script)]
    if script == "underwater_survey.py":
        args.append(str(tmp_path / "mesh.obj"))
    completed = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=1200,
        cwd=tmp_path,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
