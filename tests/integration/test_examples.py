"""Smoke tests: every example script runs to completion.

Examples are executed in-process with reduced deployment sizes would be
intrusive, so they run as subprocesses with their shipped parameters; each
one is laptop-sized by construction.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
SRC_DIR = REPO_ROOT / "src"


def _child_env() -> dict:
    """Current environment with ``src`` prepended to PYTHONPATH.

    The examples import ``repro`` without being installed; the test
    process found it via its own PYTHONPATH, which subprocess children do
    not inherit augmented -- so build it explicitly.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env

EXAMPLES = [
    "quickstart.py",
    "underwater_survey.py",
    "hole_monitoring.py",
    "pipe_inspection.py",
    "surface_tools_demo.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(EXAMPLES_DIR / script)]
    if script == "underwater_survey.py":
        args.append(str(tmp_path / "mesh.obj"))
    completed = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=1200,
        cwd=tmp_path,
        env=_child_env(),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
