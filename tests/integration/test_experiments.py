"""Integration tests for the experiment drivers."""

import pytest

from repro import DeploymentConfig, generate_network, sphere_scenario
from repro.evaluation.experiments import (
    run_ball_radius_ablation,
    run_collection_hops_ablation,
    run_error_sweep,
    run_iff_ablation,
    run_landmark_k_ablation,
    run_mesh_error_sweep,
    run_scenario,
    run_ubf_complexity,
)
from repro.evaluation.reporting import (
    render_complexity,
    render_error_sweep_counts,
    render_error_sweep_percent,
    render_mesh_error_sweep,
    render_mistaken_distribution,
    render_missing_distribution,
    render_scenario_result,
)


@pytest.fixture(scope="module")
def tiny_network():
    return generate_network(
        sphere_scenario(),
        DeploymentConfig(n_surface=250, n_interior=450, target_degree=26, seed=8),
        scenario="sphere",
    )


class TestErrorSweep:
    @pytest.fixture(scope="class")
    def points(self, tiny_network):
        return run_error_sweep(tiny_network, levels=(0.0, 0.3), seed=1)

    def test_levels_recorded(self, points):
        assert [p.level for p in points] == [0.0, 0.3]

    def test_zero_error_near_perfect(self, points):
        assert points[0].stats.correct_pct > 0.95

    def test_error_degrades_detection(self, points):
        assert points[1].stats.correct_pct <= points[0].stats.correct_pct

    def test_rendering(self, points):
        assert "30%" in render_error_sweep_counts(points)
        assert "%" in render_error_sweep_percent(points)
        render_mistaken_distribution(points)
        render_missing_distribution(points)


class TestScenarioDriver:
    def test_runs_and_renders(self):
        result = run_scenario(
            "sphere",
            DeploymentConfig(
                n_surface=250, n_interior=450, target_degree=26, seed=8
            ),
        )
        assert result.detection.correct_pct > 0.9
        assert result.meshes
        text = render_scenario_result(result)
        assert "sphere" in text


class TestMeshErrorSweep:
    def test_mesh_survives_moderate_error(self, tiny_network):
        points = run_mesh_error_sweep(tiny_network, levels=(0.0, 0.2), seed=2)
        assert len(points) == 2
        for p in points:
            assert p.meshes, f"no mesh at level {p.level}"
            assert p.meshes[0].two_faced_edge_fraction > 0.75
        render_mesh_error_sweep(points)


class TestComplexityDriver:
    def test_balls_grow_with_density(self):
        points = run_ubf_complexity(
            target_degrees=(10.0, 25.0), n_surface=150, n_interior=300
        )
        assert points[1].mean_balls_tested > points[0].mean_balls_tested
        render_complexity(points)


class TestAblations:
    def test_ball_radius_suppresses_small_hole(self):
        points = run_ball_radius_ablation(
            radii=(1.001, 2.0),
            deployment=DeploymentConfig(
                n_surface=500, n_interior=700, target_degree=30, seed=5
            ),
        )
        small_r, large_r = points
        # At the default radius the small hole is detected; at r=2 it is
        # suppressed (or at least sharply reduced).
        assert small_r.n_small_hole_detected > 0
        assert large_r.n_small_hole_detected < 0.5 * small_r.n_small_hole_detected

    def test_iff_grid_monotone_in_theta(self, tiny_network):
        points = run_iff_ablation(tiny_network, thetas=(1, 40), ttls=(3,))
        assert points[0].stats.n_found >= points[1].stats.n_found

    def test_landmark_k_changes_vertex_count(self, tiny_network):
        points = run_landmark_k_ablation(tiny_network, ks=(3, 5))
        v3 = points[0].meshes[0].n_vertices if points[0].meshes else 0
        v5 = points[1].meshes[0].n_vertices if points[1].meshes else 0
        assert v3 > v5

    def test_collection_hops_ablation(self, tiny_network):
        stats = run_collection_hops_ablation(tiny_network, hops_values=(1, 2))
        assert stats[0].n_mistaken > stats[1].n_mistaken
