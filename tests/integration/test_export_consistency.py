"""Cross-format consistency of mesh exports on a real detected boundary."""

import pytest

from repro.io.meshio import export_mesh_obj, export_mesh_off, export_mesh_ply
from repro.surface.pipeline import SurfaceBuilder


@pytest.fixture(scope="module")
def real_mesh(sphere_network, sphere_detection):
    meshes = SurfaceBuilder().build(sphere_network.graph, sphere_detection.groups)
    return sphere_network.graph, meshes[0]


class TestExportConsistency:
    def test_vertex_and_face_counts_agree(self, real_mesh, tmp_path):
        graph, mesh = real_mesh
        off = tmp_path / "m.off"
        obj = tmp_path / "m.obj"
        ply = tmp_path / "m.ply"
        export_mesh_off(mesh, graph, off)
        export_mesh_obj(mesh, graph, obj)
        export_mesh_ply(mesh, graph, ply)

        n_vertices = len(mesh.vertices)
        n_faces = len(mesh.triangles())

        off_counts = off.read_text().splitlines()[1].split()
        assert int(off_counts[0]) == n_vertices
        assert int(off_counts[1]) == n_faces

        obj_text = obj.read_text()
        assert sum(1 for l in obj_text.splitlines() if l.startswith("v ")) == n_vertices
        assert sum(1 for l in obj_text.splitlines() if l.startswith("f ")) == n_faces

        ply_text = ply.read_text()
        assert f"element vertex {n_vertices}" in ply_text
        assert f"element face {n_faces}" in ply_text

    def test_obj_indices_in_range(self, real_mesh, tmp_path):
        graph, mesh = real_mesh
        obj = tmp_path / "m.obj"
        export_mesh_obj(mesh, graph, obj)
        n_vertices = len(mesh.vertices)
        for line in obj.read_text().splitlines():
            if line.startswith("f "):
                for token in line.split()[1:]:
                    idx = int(token)
                    assert 1 <= idx <= n_vertices

    def test_off_coordinates_match_graph(self, real_mesh, tmp_path):
        graph, mesh = real_mesh
        off = tmp_path / "m.off"
        export_mesh_off(mesh, graph, off)
        lines = off.read_text().splitlines()
        first_vertex = [float(x) for x in lines[2].split()]
        expected = graph.position(mesh.vertices[0])
        assert first_vertex == pytest.approx(list(expected), abs=1e-5)
