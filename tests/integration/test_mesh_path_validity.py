"""Every virtual edge's recorded path is a real boundary walk."""

import pytest

from repro.surface.pipeline import SurfaceBuilder


@pytest.fixture(scope="module")
def built(sphere_network, sphere_detection):
    records = SurfaceBuilder().build_records(
        sphere_network.graph, sphere_detection.groups
    )
    return sphere_network.graph, records[0]


class TestVirtualEdgePaths:
    def test_paths_are_graph_walks(self, built):
        graph, record = built
        for path in record.mesh.paths.values():
            for u, v in zip(path, path[1:]):
                assert graph.has_edge(u, v), (u, v)

    def test_paths_stay_on_boundary(self, built):
        graph, record = built
        members = set(record.mesh.group)
        for path in record.mesh.paths.values():
            assert set(path) <= members

    def test_paths_are_shortest_in_boundary_subgraph(self, built):
        graph, record = built
        members = set(record.mesh.group)
        for (u, v), path in record.mesh.paths.items():
            shortest = graph.shortest_path(u, v, within=members)
            assert shortest is not None
            assert len(path) == len(shortest)

    def test_landmark_cells_cover_group(self, built):
        _, record = built
        assert set(record.cells) == set(record.mesh.group)

    def test_every_cell_owner_is_landmark(self, built):
        _, record = built
        assert set(record.cells.values()) <= set(record.landmarks)
