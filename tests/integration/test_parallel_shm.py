"""Shared-memory payload transport: spawn-context regression tests.

``run_sharded`` publishes a task's numpy payload (network CSR arrays,
measured edge values, precomputed frames) into one shared-memory segment
and ships workers an array-free task shell; each worker rehydrates the
payload exactly once from shared memory.  These tests pin the two
contracts that transport must keep:

* **Byte-identity** -- sharded output is byte-identical for workers
  {1, 2, 4}, under the *spawn* start method explicitly (the cold-import
  path: no inherited parent memory, everything travels through the
  segment) and under the platform default.
* **Single materialization** -- every shard runs against a payload that
  was installed exactly once in its worker process, observed through the
  per-process counter :data:`repro.core.parallel._MATERIALIZED` echoed
  back by ``_PayloadProbeTask``.

All tasks used here live in ``repro.core.parallel`` so spawn children can
unpickle them without importing this test module.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.parallel import (
    _PayloadProbeTask,
    run_frames_parallel,
    run_sharded,
    run_ubf_parallel,
)
from repro.network.measurement import UniformAbsoluteError, measure_distances

import numpy as np

WORKER_COUNTS = (1, 2, 4)

spawn_available = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)


def _frame_bytes(frames):
    """Exact byte-level projection of a frame list."""
    return [
        (
            f.node,
            tuple(f.members),
            f.coordinates.tobytes(),
            f.n_one_hop,
            f.smacof_iterations,
        )
        for f in frames
    ]


@pytest.fixture(scope="module")
def measured(sphere_network):
    return measure_distances(
        sphere_network.graph, UniformAbsoluteError(0.3), np.random.default_rng(7)
    )


class TestSpawnByteIdentity:
    @spawn_available
    @pytest.mark.parametrize("engine", ["batch", "sparse"])
    def test_frames_byte_identical_across_worker_counts(
        self, sphere_network, measured, engine
    ):
        reference = _frame_bytes(
            run_frames_parallel(
                sphere_network, measured, engine=engine, workers=1
            )
        )
        for workers in WORKER_COUNTS[1:]:
            frames = run_frames_parallel(
                sphere_network,
                measured,
                engine=engine,
                workers=workers,
                start_method="spawn",
            )
            assert _frame_bytes(frames) == reference, (
                f"engine={engine} workers={workers} diverged under spawn"
            )

    def test_frames_byte_identical_under_default_start_method(
        self, sphere_network, measured
    ):
        reference = _frame_bytes(
            run_frames_parallel(
                sphere_network, measured, engine="sparse", workers=1
            )
        )
        frames = run_frames_parallel(
            sphere_network, measured, engine="sparse", workers=2
        )
        assert _frame_bytes(frames) == reference

    @spawn_available
    def test_ubf_with_frames_payload_byte_identical(
        self, sphere_network, measured
    ):
        frames = {
            f.node: f
            for f in run_frames_parallel(
                sphere_network, measured, engine="sparse", workers=1
            )
        }
        reference = run_ubf_parallel(
            sphere_network,
            measured=measured,
            localization="mds",
            frames=frames,
            workers=1,
        )
        parallel = run_ubf_parallel(
            sphere_network,
            measured=measured,
            localization="mds",
            frames=frames,
            workers=2,
            start_method="spawn",
        )
        assert parallel == reference


class TestSingleMaterialization:
    @spawn_available
    def test_each_shard_sees_exactly_one_install_spawn(self, sphere_network):
        probes = run_sharded(
            _PayloadProbeTask(sphere_network),
            range(sphere_network.graph.n_nodes),
            workers=2,
            start_method="spawn",
        )
        self._check(probes, sphere_network)

    def test_each_shard_sees_exactly_one_install_default(self, sphere_network):
        probes = run_sharded(
            _PayloadProbeTask(sphere_network),
            range(sphere_network.graph.n_nodes),
            workers=4,
        )
        self._check(probes, sphere_network)

    @staticmethod
    def _check(probes, network):
        n = network.graph.n_nodes
        assert sorted(node for node, _, _ in probes) == list(range(n))
        # The payload was rehydrated exactly once per worker, never per
        # shard: every probe observed the install counter at 1.
        assert {installs for _, installs, _ in probes} == {1}
        # ...and the rehydrated network is the real one, not a stub.
        assert {seen for _, _, seen in probes} == {n}

    def test_parent_process_never_materializes(self, sphere_network):
        from repro.core import parallel

        assert parallel._MATERIALIZED == 0
