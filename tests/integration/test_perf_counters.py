"""Theorem 1 as a statistical test: counter scaling versus nodal density.

Theorem 1 bounds the exhaustive per-node UBF work at ``Theta(rho^2)``
candidate balls, each probed against the ``Theta(rho)``-sized 2-hop
collection, for ``Theta(rho^3)`` total point checks.  Because the kernels
report *semantic* work counters (hardware- and implementation-independent),
the bound is testable: sweep the target degree, fit log-log slopes of the
mean counters against the realized mean degree, and pin the exponents.

Two probe observables are distinguished:

* ``mean_probe_bound`` -- candidate balls times collection size, the
  exhaustive cost Theorem 1 bounds.  Must grow ~cubically.
* ``mean_points_checked`` -- the realized counter with per-ball early exit
  at the first strictly-inside point.  A dense ball is rejected after O(1)
  expected probes, so the realized cost tracks the *ball* count
  (~quadratic), a full Theta(rho) factor below the worst case.  The test
  locks in that saving too -- it is why ``find_first=False`` benches stay
  affordable.

Slope bands are calibrated against real deployment geometry: boundary
effects flatten the small-degree end, so the bands are wider than the
ideal exponents but still cleanly separate quadratic from cubic growth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.experiments import run_ubf_complexity

TARGET_DEGREES = (10.0, 14.0, 19.0, 25.0)


@pytest.fixture(scope="module")
def complexity_points():
    return run_ubf_complexity(
        target_degrees=TARGET_DEGREES, n_surface=300, n_interior=600, seed=0
    )


def _loglog_slope(x, y) -> float:
    return float(np.polyfit(np.log(np.asarray(x)), np.log(np.asarray(y)), 1)[0])


class TestTheorem1CounterScaling:
    def test_balls_scale_quadratically_in_degree(self, complexity_points):
        degrees = [p.mean_degree for p in complexity_points]
        balls = [p.mean_balls_tested for p in complexity_points]
        slope = _loglog_slope(degrees, balls)
        assert 1.5 < slope < 2.6, (
            f"candidate-ball count grows like degree^{slope:.2f}; "
            "Theorem 1 predicts Theta(rho^2)"
        )

    def test_probe_bound_scales_cubically_in_degree(self, complexity_points):
        degrees = [p.mean_degree for p in complexity_points]
        bound = [p.mean_probe_bound for p in complexity_points]
        slope = _loglog_slope(degrees, bound)
        assert 2.4 < slope < 3.6, (
            f"exhaustive probe bound grows like degree^{slope:.2f}; "
            "Theorem 1 predicts Theta(rho^3)"
        )

    def test_collection_size_scales_linearly_in_degree(self, complexity_points):
        """The Theta(rho) factor between the two bounds, on its own."""
        degrees = [p.mean_degree for p in complexity_points]
        coll = [p.mean_collection_size for p in complexity_points]
        slope = _loglog_slope(degrees, coll)
        assert 0.7 < slope < 1.5, (
            f"2-hop collection grows like degree^{slope:.2f}; "
            "density scaling predicts Theta(rho)"
        )

    def test_probe_bound_grows_strictly_faster_than_balls(self, complexity_points):
        degrees = [p.mean_degree for p in complexity_points]
        balls = [p.mean_balls_tested for p in complexity_points]
        bound = [p.mean_probe_bound for p in complexity_points]
        assert _loglog_slope(degrees, bound) > _loglog_slope(degrees, balls) + 0.4

    def test_early_exit_saves_the_linear_factor(self, complexity_points):
        """Realized (early-exit) probes track the ball count, not the bound."""
        degrees = [p.mean_degree for p in complexity_points]
        checked = [p.mean_points_checked for p in complexity_points]
        slope = _loglog_slope(degrees, checked)
        assert 1.5 < slope < 2.6
        # And the realized cost sits strictly below the exhaustive bound.
        for p in complexity_points:
            assert p.mean_points_checked < p.mean_probe_bound

    def test_counters_monotone_in_density(self, complexity_points):
        for attr in ("mean_balls_tested", "mean_points_checked", "mean_probe_bound"):
            values = np.array([getattr(p, attr) for p in complexity_points])
            assert (np.diff(values) > 0).all(), f"{attr} not monotone in density"
