"""Integration tests: the full detection pipeline on real deployments."""

import numpy as np
import pytest

from repro import (
    BoundaryDetector,
    DetectorConfig,
    IFFConfig,
    UBFConfig,
    UniformAbsoluteError,
)
from repro.evaluation.metrics import (
    evaluate_detection,
    missing_hop_distribution,
    mistaken_hop_distribution,
)


class TestPerfectRangingDetection:
    def test_sphere_near_perfect(self, sphere_network, sphere_detection):
        stats = evaluate_detection(sphere_network, sphere_detection)
        # Paper: near-perfect at zero error.
        assert stats.correct_pct > 0.98
        assert stats.missing_pct < 0.02
        # Discretization residue: mistaken nodes hug the surface but stay
        # a modest fraction.
        assert stats.mistaken_pct < 0.35

    def test_sphere_single_group(self, sphere_detection):
        assert len(sphere_detection.groups) == 1

    def test_one_hole_two_groups_with_hole_boundary(
        self, one_hole_network, one_hole_detection
    ):
        stats = evaluate_detection(one_hole_network, one_hole_detection)
        assert stats.correct_pct > 0.98
        assert len(one_hole_detection.groups) == 2

    def test_detection_deterministic(self, sphere_network):
        a = BoundaryDetector().detect(sphere_network)
        b = BoundaryDetector().detect(sphere_network)
        assert a.boundary == b.boundary
        assert a.groups == b.groups

    def test_iff_only_removes_candidates(self, sphere_detection):
        assert sphere_detection.boundary <= sphere_detection.candidates


class TestNoisyDetection:
    @pytest.fixture(scope="class")
    def noisy_result(self, sphere_network):
        config = DetectorConfig(error_model=UniformAbsoluteError(0.2))
        return BoundaryDetector(config).detect(
            sphere_network, rng=np.random.default_rng(3)
        )

    def test_moderate_error_still_useful(self, sphere_network, noisy_result):
        stats = evaluate_detection(sphere_network, noisy_result)
        assert stats.correct_pct > 0.7
        assert stats.localization if hasattr(stats, "localization") else True

    def test_mistaken_nodes_near_boundary(self, sphere_network, noisy_result):
        """Paper Fig. 1(h): mistaken nodes within ~3 hops of correct ones."""
        buckets = mistaken_hop_distribution(sphere_network, noisy_result)
        total = sum(buckets.values())
        if total:
            within_three = buckets[1] + buckets[2] + buckets[3]
            assert within_three / total > 0.9

    def test_missing_nodes_near_correct(self, sphere_network, noisy_result):
        """Paper Fig. 1(i): missing nodes ~all within 1 hop of correct."""
        buckets = missing_hop_distribution(sphere_network, noisy_result)
        total = sum(buckets.values())
        if total:
            assert buckets[1] / total > 0.8

    def test_localization_mode_recorded(self, noisy_result):
        assert noisy_result.localization_used == "mds"


class TestConfigurationEffects:
    def test_one_hop_collection_floods_interior(self, sphere_network):
        """The 1-hop ablation: far more mistaken nodes than 2-hop."""
        one_hop = BoundaryDetector(
            DetectorConfig(ubf=UBFConfig(collection_hops=1))
        ).detect(sphere_network)
        two_hop = BoundaryDetector(
            DetectorConfig(ubf=UBFConfig(collection_hops=2))
        ).detect(sphere_network)
        truth = sphere_network.truth_boundary_set
        mistaken_1 = len(one_hop.boundary - truth)
        mistaken_2 = len(two_hop.boundary - truth)
        assert mistaken_1 > 1.5 * mistaken_2

    def test_iff_disabled_keeps_candidates(self, sphere_network):
        config = DetectorConfig(iff=IFFConfig(enabled=False))
        result = BoundaryDetector(config).detect(sphere_network)
        assert result.boundary == result.candidates

    def test_huge_ball_radius_suppresses_detection(self, one_hole_network):
        """With r larger than the hole, the hole's boundary disappears."""
        default = BoundaryDetector().detect(one_hole_network)
        coarse = BoundaryDetector(
            DetectorConfig(ubf=UBFConfig(ball_radius=3.0))
        ).detect(one_hole_network)
        # The hole group (second largest) exists at default r.
        assert len(default.groups) == 2
        # At r=3 the small hole cannot host an empty ball.
        assert len(coarse.groups) <= len(default.groups)
        assert len(coarse.boundary) < len(default.boundary)
