"""Integration tests: surface construction on detected boundaries."""

import pytest

from repro.evaluation.mesh_metrics import evaluate_mesh
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig


class TestSphereSurface:
    @pytest.fixture(scope="class")
    def record(self, sphere_network, sphere_detection):
        return SurfaceBuilder().build_records(
            sphere_network.graph, sphere_detection.groups
        )[0]

    def test_mesh_is_closed_two_manifold(self, record):
        assert record.mesh.is_two_manifold()

    def test_sphere_euler_characteristic(self, record):
        assert record.mesh.euler_characteristic() == 2
        assert record.mesh.genus() == 0

    def test_landmarks_k_separated(self, sphere_network, record):
        graph = sphere_network.graph
        members = set(record.mesh.group)
        landmarks = record.landmarks
        for i, a in enumerate(landmarks):
            hops = graph.bfs_hops([a], within=members)
            for b in landmarks[i + 1 :]:
                assert hops.get(b, 99) >= 4  # default k=4

    def test_cdm_subset_of_cdg(self, record):
        assert record.cdm_edges <= record.cdg_edges

    def test_every_edge_has_two_faces(self, record):
        counts = record.mesh.edge_face_counts()
        assert all(c == 2 for c in counts.values())

    def test_paths_connect_their_endpoints(self, record):
        for (u, v), path in record.mesh.paths.items():
            assert {path[0], path[-1]} == {u, v}

    def test_mesh_tracks_surface(self, sphere_network, record):
        quality = evaluate_mesh(sphere_network, record.mesh)
        # Deviation well below the sphere radius (~5-6 radio ranges).
        assert quality.mean_deviation < 1.0


class TestHoleSurfaces:
    def test_one_hole_meshes(self, one_hole_network, one_hole_detection):
        meshes = SurfaceBuilder().build(
            one_hole_network.graph, one_hole_detection.groups
        )
        assert len(meshes) == 2
        outer = evaluate_mesh(one_hole_network, meshes[0])
        assert outer.two_faced_edge_fraction > 0.9

    def test_k_affects_mesh_size(self, sphere_network, sphere_detection):
        sizes = {}
        for k in (3, 5):
            builder = SurfaceBuilder(SurfaceConfig(k=k, adaptive_k=False))
            meshes = builder.build(sphere_network.graph, sphere_detection.groups)
            sizes[k] = len(meshes[0].vertices)
        assert sizes[3] > sizes[5]

    def test_tiny_group_skipped(self, sphere_network):
        builder = SurfaceBuilder(SurfaceConfig(adaptive_k=False))
        assert builder.build(sphere_network.graph, [[0, 1]]) == []

    def test_edge_flip_disabled_keeps_saturated(self, sphere_network, sphere_detection):
        config = SurfaceConfig(
            apply_edge_flip=False, apply_hole_patching=False
        )
        record = SurfaceBuilder(config).build_records(
            sphere_network.graph, sphere_detection.groups
        )[0]
        # Without the finalize passes, saturation or open edges may remain;
        # the full pipeline result must be at least as manifold.
        full = SurfaceBuilder().build_records(
            sphere_network.graph, sphere_detection.groups
        )[0]
        frac_bare = sum(
            1 for c in record.mesh.edge_face_counts().values() if c == 2
        ) / max(len(record.mesh.edges), 1)
        frac_full = sum(
            1 for c in full.mesh.edge_face_counts().values() if c == 2
        ) / max(len(full.mesh.edges), 1)
        assert frac_full >= frac_bare
