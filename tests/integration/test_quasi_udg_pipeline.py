"""End-to-end detection under the quasi-UDG radio model."""

import pytest

from repro import BoundaryDetector, DeploymentConfig, generate_network, sphere_scenario
from repro.evaluation.metrics import evaluate_detection
from repro.surface.pipeline import SurfaceBuilder


@pytest.fixture(scope="module")
def quasi_network():
    return generate_network(
        sphere_scenario(),
        DeploymentConfig(
            n_surface=350,
            n_interior=600,
            target_degree=32,
            seed=4,
            quasi_udg_alpha=0.75,
        ),
        scenario="quasi-sphere",
    )


class TestQuasiUdgPipeline:
    def test_network_respects_model(self, quasi_network):
        graph = quasi_network.graph
        # No link beyond the max range; some gray-zone pairs pruned, so the
        # degree is below the unit-disk target.
        for u, v in graph.edges():
            assert graph.distance(u, v) <= 1.0 + 1e-9
        assert graph.degrees().mean() < 32

    def test_detection_still_accurate(self, quasi_network):
        result = BoundaryDetector().detect(quasi_network)
        stats = evaluate_detection(quasi_network, result)
        assert stats.correct_pct > 0.95
        assert len(result.groups) == 1

    def test_mesh_still_builds(self, quasi_network):
        result = BoundaryDetector().detect(quasi_network)
        meshes = SurfaceBuilder().build(quasi_network.graph, result.groups)
        assert meshes
        counts = meshes[0].edge_face_counts()
        closed = sum(1 for c in counts.values() if c == 2) / len(counts)
        assert closed > 0.7
