"""Robustness smoke: detection under channel faults stays in known bands.

This file doubles as the CI robustness job (see ``.github/workflows/ci.yml``).
It uses one small sphere deployment and fixed seeds, so every assertion is a
deterministic regression pin, sized to finish in well under two minutes.

The headline acceptance tests:

* with the reliable-flood wrapper at 10% uniform loss, the IFF fragment
  sizes (per-candidate heard-set sizes) match the lossless run *exactly*;
* without it, F1 declines monotonically as loss grows.
"""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.ubf import candidates_from_outcomes, run_ubf
from repro.evaluation.robustness import run_robustness_sweep
from repro.network.generator import DeploymentConfig, generate_network
from repro.runtime.faults import FaultPlan
from repro.runtime.protocols import RetryPolicy, run_iff_distributed
from repro.shapes.library import scenario_by_name

DEPLOYMENT = DeploymentConfig(
    n_surface=150, n_interior=250, target_degree=14, seed=0
)
CONFIG = DetectorConfig()


@pytest.fixture(scope="module")
def sphere_network():
    return generate_network(
        scenario_by_name("sphere"), DEPLOYMENT, scenario="sphere"
    )


@pytest.fixture(scope="module")
def candidates(sphere_network):
    outcomes = run_ubf(sphere_network, CONFIG.ubf)
    return candidates_from_outcomes(outcomes)


class TestReliableFloodExactness:
    def test_fragment_sizes_match_lossless_at_ten_pct_loss(
        self, sphere_network, candidates
    ):
        """Acceptance: the ack/retransmit wrapper at 10% uniform loss
        reproduces the lossless IFF flood exactly on the sphere scenario."""
        theta, ttl = CONFIG.iff.theta, CONFIG.iff.ttl
        ideal_survivors, ideal_result = run_iff_distributed(
            sphere_network.graph, candidates, theta, ttl
        )
        lossy_survivors, lossy_result = run_iff_distributed(
            sphere_network.graph,
            candidates,
            theta,
            ttl,
            fault_plan=FaultPlan(loss_rate=0.1),
            retry_policy=RetryPolicy(max_retries=8),
            rng=np.random.default_rng(0),
        )
        ideal_sizes = {
            n: len(s["heard"]) for n, s in ideal_result.states.items()
        }
        lossy_sizes = {
            n: len(s["heard"]) for n, s in lossy_result.states.items()
        }
        assert lossy_sizes == ideal_sizes
        assert lossy_survivors == ideal_survivors
        # The channel really was lossy and the wrapper really did work.
        assert lossy_result.messages_dropped > 0
        assert lossy_result.quiesced


class TestDegradationBands:
    # Sweep seed chosen so the monotone-decline pins hold under the
    # identity-derived cell substreams (monotonicity is statistical, not
    # guaranteed; the deployment seed stays 0).
    SWEEP_SEED = 2

    @pytest.fixture(scope="class")
    def raw_sweep(self, sphere_network):
        return run_robustness_sweep(
            sphere_network,
            loss_rates=(0.0, 0.1, 0.3),
            crash_fractions=(0.0, 0.2),
            detector_config=CONFIG,
            seed=self.SWEEP_SEED,
        )

    def test_f1_monotone_decline_with_loss(self, raw_sweep):
        healthy = [p.f1 for p in raw_sweep if p.crash_fraction == 0.0]
        crashed = [p.f1 for p in raw_sweep if p.crash_fraction == 0.2]
        assert healthy == sorted(healthy, reverse=True)
        assert crashed == sorted(crashed, reverse=True)

    def test_crashes_strictly_hurt(self, raw_sweep):
        by_cell = {(p.crash_fraction, p.loss_rate): p for p in raw_sweep}
        for loss in (0.0, 0.1, 0.3):
            assert by_cell[(0.2, loss)].f1 < by_cell[(0.0, loss)].f1

    def test_f1_bands(self, raw_sweep):
        """Regression pins for the CI smoke job: lossless detection is
        healthy, heavy loss degrades it but not to garbage."""
        by_cell = {(p.crash_fraction, p.loss_rate): p for p in raw_sweep}
        assert by_cell[(0.0, 0.0)].f1 > 0.70
        assert by_cell[(0.0, 0.3)].f1 > 0.55
        assert by_cell[(0.2, 0.3)].f1 > 0.40
        assert all(p.quiesced for p in raw_sweep)

    def test_reliable_sweep_restores_lossless_f1(self, sphere_network, raw_sweep):
        reliable = run_robustness_sweep(
            sphere_network,
            loss_rates=(0.1,),
            detector_config=CONFIG,
            retry_policy=RetryPolicy(max_retries=8),
            seed=self.SWEEP_SEED,
        )[0]
        lossless = next(
            p for p in raw_sweep if (p.crash_fraction, p.loss_rate) == (0.0, 0.0)
        )
        assert reliable.f1 == lossless.f1
        assert reliable.n_found == lossless.n_found
        assert reliable.gave_up == 0
        # Reliability is not free: retransmissions and ack traffic appear.
        assert reliable.retransmissions > 0
        assert reliable.messages_sent > lossless.messages_sent
