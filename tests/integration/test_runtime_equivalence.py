"""The distributed protocols compute exactly what the reference code does.

These tests are the proof obligation for DESIGN.md's dual-implementation
claim: every centralized-but-localized computation in repro.core /
repro.surface is the fixed point of a one-hop message-passing protocol.
"""

from collections import defaultdict

import pytest

from repro.core.grouping import group_boundary_nodes
from repro.core.iff import iff_fragment_sizes
from repro.runtime.protocols import (
    distributed_landmark_election,
    run_grouping_distributed,
    run_iff_distributed,
    run_voronoi_distributed,
)
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks


@pytest.fixture(scope="module")
def boundary_setup(sphere_network, sphere_detection):
    graph = sphere_network.graph
    candidates = sphere_detection.candidates
    boundary = sphere_detection.boundary
    group = sphere_detection.groups[0]
    return graph, candidates, boundary, group


class TestIFFEquivalence:
    def test_flood_counts_match_bfs(self, boundary_setup):
        graph, candidates, _, _ = boundary_setup
        sizes = iff_fragment_sizes(graph, candidates, ttl=3)
        survivors, result = run_iff_distributed(graph, candidates, theta=20, ttl=3)
        for node, state in result.states.items():
            assert len(state["heard"]) == sizes[node]

    def test_survivor_sets_match(self, boundary_setup):
        graph, candidates, _, _ = boundary_setup
        sizes = iff_fragment_sizes(graph, candidates, ttl=3)
        expected = {n for n, s in sizes.items() if s >= 20}
        survivors, _ = run_iff_distributed(graph, candidates, theta=20, ttl=3)
        assert survivors == expected


class TestGroupingEquivalence:
    def test_labels_encode_components(self, boundary_setup):
        graph, _, boundary, _ = boundary_setup
        expected_groups = group_boundary_nodes(graph, boundary)
        labels, _ = run_grouping_distributed(graph, boundary)
        by_label = defaultdict(list)
        for node, label in labels.items():
            by_label[label].append(node)
        got = sorted(
            (sorted(v) for v in by_label.values()), key=lambda c: (-len(c), c[0])
        )
        assert got == expected_groups

    def test_label_is_component_minimum(self, boundary_setup):
        graph, _, boundary, _ = boundary_setup
        labels, _ = run_grouping_distributed(graph, boundary)
        for group in group_boundary_nodes(graph, boundary):
            for node in group:
                assert labels[node] == group[0]


class TestLandmarkEquivalence:
    @pytest.mark.parametrize("k", [3, 4])
    def test_election_matches_greedy(self, boundary_setup, k):
        graph, _, _, group = boundary_setup
        expected = elect_landmarks(graph, group, k)
        got, messages = distributed_landmark_election(graph, group, k)
        assert got == expected
        assert messages > 0


class TestVoronoiEquivalence:
    def test_cells_match(self, boundary_setup):
        graph, _, _, group = boundary_setup
        landmarks = elect_landmarks(graph, group, 4)
        expected = assign_voronoi_cells(graph, group, landmarks)
        got, _ = run_voronoi_distributed(graph, group, landmarks)
        assert got == expected
