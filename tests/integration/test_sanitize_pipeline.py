"""End-to-end repro-san run on a tiny scenario.

One real subprocess matrix -- two cells that differ in *both* hash seed
and worker count -- proving the pipeline's serialized outputs are
byte-identical under the conditions the sanitizer varies.  The full
pinned 2k matrix runs in CI (see the ``sanitize`` job).
"""

from repro.analysis.sanitize import Cell, ScenarioSpec, run_matrix


def test_tiny_scenario_is_byte_identical_across_cells(tmp_path):
    spec = ScenarioSpec(
        scenario="sphere", surface_nodes=60, interior_nodes=60, degree=12.0, seed=0
    )
    cells = [Cell("0", 1), Cell("1", 2)]
    ok, report = run_matrix(spec, cells, tmp_path)
    assert ok, "\n".join(report)
    # both cells really produced the full artifact set
    for cell in cells:
        cell_dir = tmp_path / cell.dirname
        for name in ("net.json", "result.json", "trace.jsonl"):
            assert (cell_dir / name).exists(), f"{cell.label} missing {name}"
