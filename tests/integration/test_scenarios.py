"""Integration: the five paper scenarios (Figs. 6-10) end to end.

One compact deployment per scenario; asserts the paper's qualitative
claims -- boundaries found, holes separated into their own groups, meshes
constructed.
"""

import pytest

from repro import BoundaryDetector, DeploymentConfig, generate_network, scenario_by_name
from repro.evaluation.metrics import evaluate_detection
from repro.surface.pipeline import SurfaceBuilder

DEPLOY = DeploymentConfig(n_surface=700, n_interior=1100, target_degree=30, seed=3)

EXPECTED_GROUPS = {
    "underwater": 1,
    "one_hole": 2,
    "two_holes": 3,
    "bent_pipe": 1,
    "sphere": 1,
}


@pytest.fixture(scope="module")
def scenario_runs():
    runs = {}
    for name in EXPECTED_GROUPS:
        network = generate_network(scenario_by_name(name), DEPLOY, scenario=name)
        result = BoundaryDetector().detect(network)
        runs[name] = (network, result)
    return runs


class TestScenarioDetection:
    @pytest.mark.parametrize("name", sorted(EXPECTED_GROUPS))
    def test_truth_boundary_found(self, scenario_runs, name):
        network, result = scenario_runs[name]
        stats = evaluate_detection(network, result)
        assert stats.correct_pct > 0.97, f"{name}: {stats.as_row()}"

    @pytest.mark.parametrize("name", sorted(EXPECTED_GROUPS))
    def test_group_count_matches_topology(self, scenario_runs, name):
        _, result = scenario_runs[name]
        assert len(result.groups) == EXPECTED_GROUPS[name], (
            f"{name}: groups {[len(g) for g in result.groups]}"
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_GROUPS))
    def test_outer_boundary_is_largest_group(self, scenario_runs, name):
        network, result = scenario_runs[name]
        # Majority of ground-truth outer nodes must land in groups[0].
        truth = network.truth_boundary_set
        overlap = len(set(result.groups[0]) & truth)
        assert overlap > 0.5 * len(result.groups[0])


#: Closed-edge-fraction floor per scenario.  Convex-ish boundaries close
#: fully; the thin bent pipe is the stress case for the connectivity-only
#: crossing heuristic (see DESIGN.md section 6).
MESH_QUALITY_FLOOR = {
    "underwater": 0.9,
    "one_hole": 0.9,
    "two_holes": 0.9,
    "bent_pipe": 0.6,
    "sphere": 0.9,
}


class TestScenarioSurfaces:
    @pytest.mark.parametrize("name", sorted(EXPECTED_GROUPS))
    def test_meshes_built_and_mostly_closed(self, scenario_runs, name):
        network, result = scenario_runs[name]
        meshes = SurfaceBuilder().build(network.graph, result.groups)
        assert meshes, f"{name}: no mesh built"
        counts = meshes[0].edge_face_counts()
        two_faced = sum(1 for c in counts.values() if c == 2) / len(counts)
        floor = MESH_QUALITY_FLOOR[name]
        assert two_faced > floor, f"{name}: only {two_faced:.0%} edges closed"
