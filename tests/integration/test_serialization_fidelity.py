"""Detection on a round-tripped network matches the original exactly."""

import numpy as np

from repro import BoundaryDetector, DetectorConfig, UniformAbsoluteError
from repro.io.serialization import load_network, save_network


class TestSerializationFidelity:
    def test_true_coordinate_detection_identical(self, sphere_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(sphere_network, path)
        loaded = load_network(path)
        a = BoundaryDetector().detect(sphere_network)
        b = BoundaryDetector().detect(loaded)
        assert a.boundary == b.boundary
        assert a.groups == b.groups

    def test_noisy_detection_identical_given_same_rng(self, sphere_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(sphere_network, path)
        loaded = load_network(path)
        config = DetectorConfig(error_model=UniformAbsoluteError(0.2))
        a = BoundaryDetector(config).detect(
            sphere_network, rng=np.random.default_rng(5)
        )
        b = BoundaryDetector(config).detect(loaded, rng=np.random.default_rng(5))
        assert a.boundary == b.boundary
