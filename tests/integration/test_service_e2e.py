"""End-to-end service tests: real worker processes, real kills.

The acceptance scenario of the service layer: two ``repro-serve work``
processes drain one queue, one of them is SIGKILLed mid-job, its lease
lapses, the survivor re-leases and completes the job, and every artifact
(job records, per-job JSONL traces, canonical state) comes out valid and
deterministic.

Deployment sizes default to laptop-small so tier-1 stays fast; the CI
service job exports ``REPRO_SERVICE_SCALE=2k`` to run the kill test
against the pinned 2k-node bench deployment (sphere, 800 surface / 1200
interior, target degree 24, seed 11 -- ``BENCH_SCENARIOS["ubf_2k"]``).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.observability.export import validate_trace_lines
from repro.service.jobstore import JobSpec, JobStore

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"

#: Laptop-small deployment for the default (tier-1) run.
SMALL = dict(n_surface=60, n_interior=80, target_degree=12.0, theta=8)

#: The pinned 2k-node bench deployment (BENCH_SCENARIOS["ubf_2k"]).
SCALE_2K = dict(n_surface=800, n_interior=1200, target_degree=24.0, theta=20)


def _kill_spec_kwargs() -> dict:
    if os.environ.get("REPRO_SERVICE_SCALE") == "2k":
        return dict(SCALE_2K)
    return dict(SMALL)


def _child_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


def _spawn_worker(root, worker_id, *extra):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "work",
            "--root", str(root), "--worker-id", worker_id,
            "--poll-interval", "0.1", "--backoff-base", "0",
            "--backoff-jitter", "0", *extra,
        ],
        env=_child_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _serve(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.service.cli", *args],
        env=_child_env(),
        capture_output=True,
        text=True,
    )


def _wait_terminal(store, timeout=180.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if store.jobs() and store.all_terminal():
            return
        time.sleep(0.25)
    pytest.fail(f"queue not drained in {timeout}s: {store.counts()}")


class TestKillAWorker:
    def test_sigkilled_worker_job_is_releases_and_completed(self, tmp_path):
        """SIGKILL one of two workers mid-job: the lease lapses, the
        survivor re-leases the job under backoff, and the queue drains to
        done with a schema-valid per-job trace."""
        root = tmp_path / "store"
        store = JobStore(root)
        kwargs = _kill_spec_kwargs()
        # The victim's job sleeps long enough to be killed mid-attempt.
        slow = store.submit(
            JobSpec(seed=11, test_delay_seconds=8.0, **kwargs), max_attempts=3
        )
        fast_ids = [
            store.submit(JobSpec(seed=s, **kwargs), max_attempts=3).job_id
            for s in (12, 13)
        ]

        # Victim worker with a short lease; claims the slow job first
        # (submission order) and dies inside its 8-second sleep.
        victim = _spawn_worker(root, "victim", "--lease-ttl", "2")
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                record = store.load(slow.job_id)
                if record.state == "running":
                    break
                time.sleep(0.1)
            else:
                pytest.fail("victim never started the slow job")
            victim.kill()
            victim.wait(timeout=10)

            survivor = _spawn_worker(
                root, "survivor", "--lease-ttl", "2", "--exit-when-idle"
            )
            try:
                # The survivor idles out only once nothing is claimable,
                # but the lapsed lease needs ~2s to expire first -- so it
                # may exit early once; re-run until the queue is drained.
                deadline = time.monotonic() + 180.0
                while time.monotonic() < deadline:
                    survivor.wait(timeout=180)
                    if store.all_terminal():
                        break
                    time.sleep(0.5)
                    survivor = _spawn_worker(
                        root, "survivor", "--lease-ttl", "2",
                        "--exit-when-idle",
                    )
            finally:
                if survivor.poll() is None:
                    survivor.kill()
                    survivor.wait(timeout=10)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=10)

        record = store.load(slow.job_id)
        assert record.state == "done", record.error
        # The kill burned attempt 1; the survivor's re-lease is attempt 2.
        assert record.attempts == 2
        assert record.error is None
        assert store.load(fast_ids[0]).state == "done"
        assert store.load(fast_ids[1]).state == "done"
        # The lapse was observed and logged as such.
        log = (store.job_dir(slow.job_id) / "log.jsonl").read_text()
        events = [json.loads(line)["event"] for line in log.splitlines()]
        assert "lease_expired" in events
        assert events.count("leased") == 2
        # The completed attempt's trace is schema-valid and has spans.
        lines = store.trace_path(slow.job_id).read_text().splitlines()
        assert validate_trace_lines(lines) == []
        assert len(lines) > 1


class TestCliSmoke:
    def test_submit_work_status_requeue_roundtrip(self, tmp_path):
        root = tmp_path / "store"
        submit = _serve(
            "submit", "--root", str(root), "--surface-nodes", "60",
            "--interior-nodes", "80", "--degree", "12", "--theta", "8",
            "--seed", "21",
        )
        assert submit.returncode == 0, submit.stderr
        job_id, state = submit.stdout.split()
        assert state == "queued"

        work = _serve(
            "work", "--root", str(root), "--worker-id", "cli-w",
            "--exit-when-idle", "--poll-interval", "0.1",
        )
        assert work.returncode == 0, work.stderr
        assert "processed 1 job(s)" in work.stdout

        status = _serve("status", "--root", str(root))
        assert status.returncode == 0
        assert "done=1" in status.stdout

        # Resubmitting the identical spec is a cache hit, born done.
        twin = _serve(
            "submit", "--root", str(root), "--surface-nodes", "60",
            "--interior-nodes", "80", "--degree", "12", "--theta", "8",
            "--seed", "21",
        )
        assert "(cache hit)" in twin.stdout
        twin_id = twin.stdout.split()[0]
        store = JobStore(root)
        trace = store.trace_path(twin_id).read_text().splitlines()
        assert validate_trace_lines(trace) == []
        assert len(trace) == 1  # header only: zero pipeline spans

        # The one-record store status table shows both jobs.
        one = _serve("status", "--root", str(root), "--job", job_id)
        assert json.loads(one.stdout)["state"] == "done"

    def test_canonical_status_matches_store_projection(self, tmp_path):
        root = tmp_path / "store"
        store = JobStore(root)
        store.submit(JobSpec(seed=3, **SMALL))
        out = _serve("status", "--root", str(root), "--canonical")
        assert out.returncode == 0
        assert out.stdout == store.canonical_state()


class TestWallBudgetDegradation:
    def test_budget_blown_job_completes_degraded_via_cli(self, tmp_path):
        root = tmp_path / "store"
        store = JobStore(root)
        store.submit(
            JobSpec(seed=31, test_delay_seconds=1.0, **SMALL), max_attempts=3
        )
        work = _serve(
            "work", "--root", str(root), "--worker-id", "budgeted",
            "--exit-when-idle", "--poll-interval", "0.1",
            "--wall-budget", "0.2", "--backoff-base", "0",
            "--backoff-jitter", "0",
        )
        assert work.returncode == 0, work.stderr
        record = store.jobs()[0]
        assert record.state == "done"
        assert record.degraded
        assert record.budget_breached == "wall_time"
        assert record.result["surface"] is None


class TestQueueDeterminism:
    def test_one_vs_two_workers_byte_identical_canonical_state(self, tmp_path):
        """Identical queue + seeds => byte-identical job-store final
        states and tick traces, regardless of worker count."""
        def drain(root, n_workers):
            store = JobStore(root)
            for seed in (41, 42, 43):
                store.submit(JobSpec(seed=seed, **SMALL))
            workers = [
                _spawn_worker(
                    root, f"w{i}", "--lease-ttl", "30", "--exit-when-idle"
                )
                for i in range(n_workers)
            ]
            for proc in workers:
                out, err = proc.communicate(timeout=300)
                assert proc.returncode == 0, err
            _wait_terminal(store)
            return store

        solo = drain(tmp_path / "solo", 1)
        duo = drain(tmp_path / "duo", 2)
        assert solo.canonical_state() == duo.canonical_state()
        for jid_a, jid_b in zip(solo.job_ids(), duo.job_ids()):
            assert jid_a == jid_b
            assert (
                solo.trace_path(jid_a).read_bytes()
                == duo.trace_path(jid_b).read_bytes()
            )
