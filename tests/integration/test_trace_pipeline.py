"""End-to-end tracing: one traced detection covers every pipeline stage.

Also pins the detection-contract fixes that ride along with the
observability layer: the trilateration localization mode flows through the
pipeline, and supplying measurements that the resolved mode will ignore is
loudly reported instead of silently discarded.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro import BoundaryDetector, DetectorConfig
from repro.core.parallel import SHARD_SIZE
from repro.observability.export import trace_lines, validate_trace_lines
from repro.observability.tracer import TickClock, Tracer
from repro.surface.pipeline import SurfaceBuilder


def _span_names(roots):
    names = []

    def walk(span):
        names.append(span.name)
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    return names


class TestTracedDetection:
    def test_trace_covers_every_stage(self, sphere_network):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        result = BoundaryDetector().detect(sphere_network, tracer=tracer)
        SurfaceBuilder(tracer=tracer).build_records(
            sphere_network.graph, result.groups
        )

        names = _span_names(tracer.roots)
        for stage in ("detect", "localization", "ubf", "ubf.shard", "iff",
                      "grouping", "surface.group", "surface.attempt"):
            assert stage in names, f"stage {stage!r} missing from trace"
        expected_shards = -(-sphere_network.graph.n_nodes // SHARD_SIZE)
        assert names.count("ubf.shard") == expected_shards

        lines = trace_lines(tracer.roots)
        assert validate_trace_lines(lines) == []

    def test_root_span_carries_config_and_counters(self, sphere_network):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        result = BoundaryDetector().detect(sphere_network, tracer=tracer)
        detect_span = tracer.roots[0]
        assert detect_span.name == "detect"
        assert detect_span.attrs["config"]["localization"] == "auto"
        assert detect_span.attrs["rng"] == "default_seed_0"
        assert detect_span.attrs["n_boundary"] == len(result.boundary)
        assert detect_span.attrs["n_groups"] == len(result.groups)

    def test_traced_and_untraced_results_match(self, sphere_network,
                                               sphere_detection):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        traced = BoundaryDetector().detect(sphere_network, tracer=tracer)
        assert traced.boundary == sphere_detection.boundary
        assert traced.groups == sphere_detection.groups

    def test_null_tracer_leaves_no_spans(self, sphere_network):
        from repro.observability.tracer import NULL_TRACER

        BoundaryDetector().detect(sphere_network, tracer=NULL_TRACER)
        assert NULL_TRACER.roots == []


class TestTrilaterationMode:
    def test_trilateration_flows_through_pipeline(self, sphere_network):
        config = DetectorConfig(localization="trilateration")
        assert config.resolved_localization() == "trilateration"
        result = BoundaryDetector(config).detect(
            sphere_network, rng=np.random.default_rng(3)
        )
        assert result.localization_used == "trilateration"
        assert result.boundary  # the mode actually detects something

    def test_trilateration_mode_recorded_in_trace(self, sphere_network):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        BoundaryDetector(DetectorConfig(localization="trilateration")).detect(
            sphere_network, tracer=tracer
        )
        detect_span = tracer.roots[0]
        assert detect_span.attrs["localization"] == "trilateration"
        (loc_span,) = [c for c in detect_span.children
                       if c.name == "localization"]
        assert loc_span.attrs["mode"] == "trilateration"
        assert loc_span.attrs["measurements_generated"] is True


class TestMeasuredIgnoredWarning:
    def test_warns_and_records_event(self, sphere_network, caplog):
        from repro.network.measurement import NoError, measure_distances

        measured = measure_distances(
            sphere_network.graph, NoError(), np.random.default_rng(0)
        )
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        with caplog.at_level(logging.WARNING, logger="repro.core.pipeline"):
            # localization='auto' + NoError resolves to 'true': the
            # supplied measurements are ignored.
            BoundaryDetector().detect(
                sphere_network, measured=measured, tracer=tracer
            )
        assert any("measurements are ignored" in r.message
                   for r in caplog.records)
        detect_span = tracer.roots[0]
        assert [e["name"] for e in detect_span.events] == ["measured_ignored"]

    def test_no_warning_when_measurements_consumed(self, sphere_network,
                                                   caplog):
        from repro.network.measurement import NoError, measure_distances

        measured = measure_distances(
            sphere_network.graph, NoError(), np.random.default_rng(0)
        )
        config = DetectorConfig(localization="mds")
        with caplog.at_level(logging.WARNING, logger="repro.core.pipeline"):
            BoundaryDetector(config).detect(sphere_network, measured=measured)
        assert not caplog.records


class TestBoundaryMaskValidation:
    def test_out_of_range_id_raises_value_error(self, sphere_detection):
        with pytest.raises(ValueError, match="outside"):
            sphere_detection.boundary_mask(10)

    def test_negative_id_raises_value_error(self):
        from repro.core.pipeline import BoundaryDetectionResult

        result = BoundaryDetectionResult(
            candidates={-1}, boundary={-1, 2}, groups=[[-1, 2]]
        )
        with pytest.raises(ValueError, match="-1"):
            result.boundary_mask(4)

    def test_valid_ids_unaffected(self, sphere_detection, sphere_network):
        mask = sphere_detection.boundary_mask(sphere_network.graph.n_nodes)
        assert int(mask.sum()) == sphere_detection.n_found
