"""Property-based tests for the ball-fitting solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.ballfit import (
    balls_through_point_pairs,
    balls_through_three_points,
    empty_ball_exists,
)

coord = st.floats(-0.875, 0.875, allow_nan=False, allow_infinity=False, width=32)
point = arrays(np.float64, (3,), elements=coord)


@st.composite
def triangle(draw):
    p1 = draw(point)
    p2 = draw(point)
    p3 = draw(point)
    return p1, p2, p3


class TestBallsThroughThreePoints:
    @given(triangle(), st.floats(0.5, 2.0))
    @settings(max_examples=150, deadline=None)
    def test_centers_equidistant_from_all_three(self, tri, radius):
        p1, p2, p3 = tri
        for center in balls_through_three_points(p1, p2, p3, radius):
            for p in (p1, p2, p3):
                assert abs(np.linalg.norm(center - p) - radius) < 1e-6 * radius

    @given(triangle(), st.floats(0.5, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_at_most_two_solutions(self, tri, radius):
        assert len(balls_through_three_points(*tri, radius)) <= 2

    @given(triangle(), st.floats(0.5, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_translation_invariance(self, tri, radius):
        p1, p2, p3 = tri
        shift = np.array([3.0, -7.0, 11.0])
        base = balls_through_three_points(p1, p2, p3, radius)
        moved = balls_through_three_points(p1 + shift, p2 + shift, p3 + shift, radius)
        assert len(base) == len(moved)
        for b, m in zip(base, moved):
            assert np.allclose(b + shift, m, atol=1e-6)


class TestBatchConsistency:
    @given(
        arrays(np.float64, (6, 3), elements=coord),
        st.floats(0.8, 1.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_centers_all_valid(self, neighbors, radius):
        origin = np.zeros(3)
        centers, pairs = balls_through_point_pairs(origin, neighbors, radius)
        for center in centers:
            assert abs(np.linalg.norm(center - origin) - radius) < 1e-6


class TestEmptyBallInvariants:
    @given(arrays(np.float64, (8, 3), elements=coord))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_check_set(self, neighbors):
        """Adding check points can only flip boundary -> interior."""
        origin = np.zeros(3)
        base = empty_ball_exists(origin, neighbors, 1.0)
        extra = np.vstack([neighbors, neighbors * 0.5 + 0.1])
        augmented = empty_ball_exists(origin, neighbors, 1.0, check_points=extra)
        if augmented.is_boundary:
            assert base.is_boundary

    @given(arrays(np.float64, (8, 3), elements=coord))
    @settings(max_examples=60, deadline=None)
    def test_witness_ball_is_actually_empty(self, neighbors):
        origin = np.zeros(3)
        result = empty_ball_exists(origin, neighbors, 1.0)
        if result.empty_center is None:
            return
        dists = np.linalg.norm(neighbors - result.empty_center, axis=1)
        # No neighbor may be strictly inside the witness ball.
        assert (dists > 1.0 - 1e-6).all()
