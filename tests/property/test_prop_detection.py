"""Property-based tests over the detection pipeline's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IFFConfig
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.network.graph import NetworkGraph


@st.composite
def random_graph_and_candidates(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(10, 40))
    pts = rng.uniform(0, 3, size=(n, 3))
    graph = NetworkGraph(pts, radio_range=1.0)
    k = draw(st.integers(0, n))
    candidates = set(rng.choice(n, size=k, replace=False).tolist())
    return graph, candidates


class TestIFFProperties:
    @given(random_graph_and_candidates(), st.integers(1, 10), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_survivors_subset_of_candidates(self, gc, theta, ttl):
        graph, candidates = gc
        survivors = run_iff(graph, candidates, IFFConfig(theta=theta, ttl=ttl))
        assert survivors <= candidates

    @given(random_graph_and_candidates(), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_theta(self, gc, theta, ttl):
        graph, candidates = gc
        low = run_iff(graph, candidates, IFFConfig(theta=theta, ttl=ttl))
        high = run_iff(graph, candidates, IFFConfig(theta=theta + 2, ttl=ttl))
        assert high <= low

    @given(random_graph_and_candidates(), st.integers(2, 8), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_ttl(self, gc, theta, ttl):
        graph, candidates = gc
        short = run_iff(graph, candidates, IFFConfig(theta=theta, ttl=ttl))
        longer = run_iff(graph, candidates, IFFConfig(theta=theta, ttl=ttl + 1))
        assert short <= longer


class TestGroupingProperties:
    @given(random_graph_and_candidates())
    @settings(max_examples=50, deadline=None)
    def test_groups_partition_input(self, gc):
        graph, candidates = gc
        groups = group_boundary_nodes(graph, candidates)
        flat = [n for g in groups for n in g]
        assert sorted(flat) == sorted(candidates)

    @given(random_graph_and_candidates())
    @settings(max_examples=50, deadline=None)
    def test_no_edges_between_groups(self, gc):
        graph, candidates = gc
        groups = group_boundary_nodes(graph, candidates)
        for i, ga in enumerate(groups):
            for gb in groups[i + 1 :]:
                for u in ga:
                    for v in gb:
                        assert not graph.has_edge(u, v)

    @given(random_graph_and_candidates())
    @settings(max_examples=50, deadline=None)
    def test_groups_internally_connected(self, gc):
        graph, candidates = gc
        groups = group_boundary_nodes(graph, candidates)
        for group in groups:
            hops = graph.bfs_hops([group[0]], within=set(group))
            assert set(hops) == set(group)
