"""Property-based tests for NetworkGraph invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.network.graph import NetworkGraph

coord = st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False, width=32)
positions = arrays(np.float64, (20, 3), elements=coord)


class TestGraphInvariants:
    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_adjacency_symmetric(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        for u in range(g.n_nodes):
            for v in g.neighbors(u):
                assert g.has_edge(int(v), u)

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_edges_within_radio_range(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        for u, v in g.edges():
            assert g.distance(u, v) <= 1.0 + 1e-9

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        comps = g.connected_components()
        seen = [n for comp in comps for n in comp]
        assert sorted(seen) == list(range(g.n_nodes))

    @given(positions, st.integers(0, 19), st.integers(0, 19))
    @settings(max_examples=40, deadline=None)
    def test_shortest_path_length_matches_bfs(self, pts, a, b):
        g = NetworkGraph(pts, radio_range=1.0)
        path = g.shortest_path(a, b)
        hops = g.bfs_hops([a])
        if path is None:
            assert b not in hops
        else:
            assert len(path) - 1 == hops[b]
            # Path is a real walk.
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    @given(positions, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_bfs_max_hops_prefix(self, pts, cap):
        """Capped BFS equals the full BFS restricted to <= cap."""
        g = NetworkGraph(pts, radio_range=1.0)
        full = g.bfs_hops([0])
        capped = g.bfs_hops([0], max_hops=cap)
        assert capped == {n: d for n, d in full.items() if d <= cap}


class TestCSRDerivedViews:
    """The CSR-backed accessors must agree with first-principles recomputation."""

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_degrees_match_neighbor_counts(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        expected = np.array([g.neighbors(u).size for u in range(g.n_nodes)])
        assert np.array_equal(g.degrees(), expected)

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_n_edges_matches_edge_list(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        listed = list(g.edges())
        assert g.n_edges == len(listed)
        assert g.n_edges == int(g.degrees().sum()) // 2

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_edge_array_matches_iterator_order(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        listed = list(g.edges())
        arr = g.edge_array()
        assert arr.shape == (len(listed), 2)
        assert [tuple(row) for row in arr.tolist()] == listed
        expected = sorted(
            (u, int(v)) for u in range(g.n_nodes) for v in g.neighbors(u) if u < v
        )
        assert listed == expected

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_csr_rows_are_sorted_neighbors(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        indptr, indices = g.csr()
        for u in range(g.n_nodes):
            row = indices[indptr[u] : indptr[u + 1]]
            assert np.array_equal(row, g.neighbors(u))


class TestKHopCollections:
    """The multi-source sweep versus the dict/deque BFS oracle."""

    @given(positions, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_matches_bfs_oracle_all_sources(self, pts, hops):
        g = NetworkGraph(pts, radio_range=1.0)
        collections = g.k_hop_collections(hops)
        assert len(collections) == g.n_nodes
        for source, (nodes, hop_counts) in enumerate(collections):
            oracle = g.bfs_hops([source], max_hops=hops)
            assert np.array_equal(nodes, np.sort(nodes))
            assert {int(n): int(h) for n, h in zip(nodes, hop_counts)} == oracle

    @given(positions, st.lists(st.integers(0, 19), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_source_subset_matches_full_sweep(self, pts, sources):
        g = NetworkGraph(pts, radio_range=1.0)
        full = g.k_hop_collections(2)
        subset = g.k_hop_collections(2, sources=sources)
        for s, (nodes, hop_counts) in zip(sources, subset):
            assert np.array_equal(nodes, full[s][0])
            assert np.array_equal(hop_counts, full[s][1])

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_hops_one_is_closed_neighborhood(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        for source, (nodes, hop_counts) in enumerate(g.k_hop_collections(1)):
            expected = sorted([source] + [int(v) for v in g.neighbors(source)])
            assert nodes.tolist() == expected
            assert all(
                h == (0 if int(n) == source else 1)
                for n, h in zip(nodes, hop_counts)
            )

    def test_disconnected_components_stay_separate(self):
        # Two far-apart cliques: collections never cross the gap.
        pts = np.array(
            [[0, 0, 0], [0.5, 0, 0], [0, 0.5, 0],
             [10, 0, 0], [10.5, 0, 0], [10, 0.5, 0]],
            dtype=float,
        )
        g = NetworkGraph(pts, radio_range=1.0)
        for source, (nodes, hop_counts) in enumerate(g.k_hop_collections(3)):
            same_side = {n for n in range(6) if (n < 3) == (source < 3)}
            assert set(nodes.tolist()) == same_side
            assert g.bfs_hops([source], max_hops=3) == {
                int(n): int(h) for n, h in zip(nodes, hop_counts)
            }

    def test_block_size_does_not_change_results(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0.0, 3.0, size=(30, 3))
        g = NetworkGraph(pts, radio_range=1.0)
        reference = g.k_hop_collections(2)
        for block in (1, 7, 64):
            blocked = g.k_hop_collections(2, block_size=block)
            for (n1, h1), (n2, h2) in zip(reference, blocked):
                assert np.array_equal(n1, n2) and np.array_equal(h1, h2)

    def test_invalid_arguments_rejected(self):
        g = NetworkGraph(np.zeros((3, 3)), radio_range=1.0)
        with pytest.raises(ValueError):
            g.k_hop_collections(-1)
        with pytest.raises(ValueError):
            g.k_hop_collections(2, sources=[5])
        with pytest.raises(ValueError):
            g.k_hop_collections(2, block_size=0)
