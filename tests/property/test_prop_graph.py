"""Property-based tests for NetworkGraph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.network.graph import NetworkGraph

coord = st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False, width=32)
positions = arrays(np.float64, (20, 3), elements=coord)


class TestGraphInvariants:
    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_adjacency_symmetric(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        for u in range(g.n_nodes):
            for v in g.neighbors(u):
                assert g.has_edge(int(v), u)

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_edges_within_radio_range(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        for u, v in g.edges():
            assert g.distance(u, v) <= 1.0 + 1e-9

    @given(positions)
    @settings(max_examples=40, deadline=None)
    def test_components_partition_nodes(self, pts):
        g = NetworkGraph(pts, radio_range=1.0)
        comps = g.connected_components()
        seen = [n for comp in comps for n in comp]
        assert sorted(seen) == list(range(g.n_nodes))

    @given(positions, st.integers(0, 19), st.integers(0, 19))
    @settings(max_examples=40, deadline=None)
    def test_shortest_path_length_matches_bfs(self, pts, a, b):
        g = NetworkGraph(pts, radio_range=1.0)
        path = g.shortest_path(a, b)
        hops = g.bfs_hops([a])
        if path is None:
            assert b not in hops
        else:
            assert len(path) - 1 == hops[b]
            # Path is a real walk.
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)

    @given(positions, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_bfs_max_hops_prefix(self, pts, cap):
        """Capped BFS equals the full BFS restricted to <= cap."""
        g = NetworkGraph(pts, radio_range=1.0)
        full = g.bfs_hops([0])
        capped = g.bfs_hops([0], max_hops=cap)
        assert capped == {n: d for n, d in full.items() if d <= cap}
