"""Property-based tests for landmark election invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.graph import NetworkGraph
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks


@st.composite
def random_group(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(8, 30))
    pts = rng.uniform(0, 2.5, size=(n, 3))
    graph = NetworkGraph(pts, radio_range=1.0)
    # Use the largest connected component as the group.
    group = max(graph.connected_components(), key=len)
    k = draw(st.integers(2, 4))
    return graph, group, k


class TestElectionInvariants:
    @given(random_group())
    @settings(max_examples=60, deadline=None)
    def test_pairwise_separation(self, setup):
        graph, group, k = setup
        landmarks = elect_landmarks(graph, group, k)
        members = set(group)
        for i, a in enumerate(landmarks):
            hops = graph.bfs_hops([a], within=members)
            for b in landmarks[i + 1 :]:
                assert hops.get(b, 10**9) >= k

    @given(random_group())
    @settings(max_examples=60, deadline=None)
    def test_maximality(self, setup):
        """Every member is within k-1 hops of some landmark."""
        graph, group, k = setup
        landmarks = elect_landmarks(graph, group, k)
        hops = graph.bfs_hops(landmarks, within=set(group))
        for node in group:
            assert hops.get(node, 10**9) <= k - 1

    @given(random_group())
    @settings(max_examples=60, deadline=None)
    def test_cells_choose_a_closest_landmark(self, setup):
        graph, group, k = setup
        landmarks = elect_landmarks(graph, group, k)
        cells = assign_voronoi_cells(graph, group, landmarks)
        members = set(group)
        landmark_hops = {
            lm: graph.bfs_hops([lm], within=members) for lm in landmarks
        }
        for node, owner in cells.items():
            d_owner = landmark_hops[owner][node]
            best = min(
                h[node] for h in landmark_hops.values() if node in h
            )
            assert d_owner == best

    @given(random_group())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, setup):
        graph, group, k = setup
        assert elect_landmarks(graph, group, k) == elect_landmarks(graph, group, k)
