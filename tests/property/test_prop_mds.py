"""Property-based tests for MDS and distance completion."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.mds import classical_mds, complete_distance_matrix
from repro.geometry.primitives import pairwise_distances
from repro.geometry.transforms import procrustes_disparity

coord = st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False, width=32)


class TestCompletionProperties:
    @given(arrays(np.float64, (6, 3), elements=coord))
    @settings(max_examples=60, deadline=None)
    def test_completion_never_increases_entries(self, pts):
        """Shortest-path completion can only shrink finite entries."""
        d = pairwise_distances(pts)
        completed = complete_distance_matrix(d)
        assert (completed <= d + 1e-12).all()

    @given(arrays(np.float64, (6, 3), elements=coord), st.integers(0, 14))
    @settings(max_examples=60, deadline=None)
    def test_completed_matrix_is_metric(self, pts, knockout_seed):
        """Output satisfies the triangle inequality and symmetry."""
        d = pairwise_distances(pts)
        rng = np.random.default_rng(knockout_seed)
        mask = rng.uniform(size=d.shape) < 0.3
        mask = mask | mask.T
        np.fill_diagonal(mask, False)
        partial = d.copy()
        partial[mask] = np.inf
        completed = complete_distance_matrix(partial)
        assert np.allclose(completed, completed.T)
        m = completed.shape[0]
        for i in range(m):
            for j in range(m):
                for k in range(m):
                    assert completed[i, j] <= completed[i, k] + completed[k, j] + 1e-9


class TestMDSProperties:
    @given(arrays(np.float64, (7, 3), elements=coord))
    @settings(max_examples=60, deadline=None)
    def test_exact_recovery_up_to_rigid_motion(self, pts):
        coords = classical_mds(pairwise_distances(pts))
        assert procrustes_disparity(coords, pts) < 1e-6

    @given(arrays(np.float64, (7, 3), elements=coord))
    @settings(max_examples=40, deadline=None)
    def test_invariance_under_rigid_motion(self, pts):
        """MDS of rotated/translated points embeds congruently."""
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        moved = pts @ rot.T + np.array([3.0, -1.0, 2.0])
        c1 = classical_mds(pairwise_distances(pts))
        c2 = classical_mds(pairwise_distances(moved))
        assert procrustes_disparity(c1, c2) < 1e-6
