"""Property-based tests for the ranging-error models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.network.measurement import (
    MIN_MEASURED_DISTANCE,
    GaussianError,
    NoError,
    UniformAbsoluteError,
    UniformRelativeError,
)

distances = arrays(
    np.float64,
    st.integers(1, 50),
    elements=st.floats(0.015625, 1.0, allow_nan=False, width=32),
)
levels = st.floats(0.0, 1.0, allow_nan=False, width=32)
seeds = st.integers(0, 2**31 - 1)


def _models(level):
    return [
        NoError(),
        UniformAbsoluteError(level),
        UniformRelativeError(level),
        GaussianError(level / 2),
    ]


class TestModelProperties:
    @given(distances, levels, seeds)
    @settings(max_examples=80, deadline=None)
    def test_outputs_positive(self, d, level, seed):
        for model in _models(level):
            out = model.perturb(d, np.random.default_rng(seed))
            assert (out >= MIN_MEASURED_DISTANCE - 1e-15).all()

    @given(distances, levels, seeds)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_given_seed(self, d, level, seed):
        for model in _models(level):
            a = model.perturb(d, np.random.default_rng(seed))
            b = model.perturb(d, np.random.default_rng(seed))
            assert np.array_equal(a, b)

    @given(distances, levels, seeds)
    @settings(max_examples=60, deadline=None)
    def test_uniform_absolute_bounded(self, d, level, seed):
        out = UniformAbsoluteError(level).perturb(d, np.random.default_rng(seed))
        assert (out <= d + level + 1e-12).all()
        assert (out >= np.maximum(d - level, MIN_MEASURED_DISTANCE) - 1e-12).all()

    @given(distances, levels, seeds)
    @settings(max_examples=60, deadline=None)
    def test_uniform_relative_bounded(self, d, level, seed):
        out = UniformRelativeError(level).perturb(d, np.random.default_rng(seed))
        assert (out <= d * (1 + level) + 1e-12).all()

    @given(distances, seeds)
    @settings(max_examples=40, deadline=None)
    def test_zero_level_is_identity(self, d, seed):
        rng = np.random.default_rng(seed)
        assert np.allclose(UniformAbsoluteError(0.0).perturb(d, rng), d)
        assert np.allclose(UniformRelativeError(0.0).perturb(d, rng), d)
        assert np.allclose(GaussianError(0.0).perturb(d, rng), d)

    @given(distances, levels, seeds)
    @settings(max_examples=40, deadline=None)
    def test_input_never_mutated(self, d, level, seed):
        original = d.copy()
        for model in _models(level):
            model.perturb(d, np.random.default_rng(seed))
        assert np.array_equal(d, original)
