"""Property-based tests for TriangularMesh topology invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surface.mesh import TriangularMesh, edge_key


@st.composite
def random_mesh(draw):
    n = draw(st.integers(4, 12))
    vertices = list(range(n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=len(possible), unique=True)
    )
    mesh = TriangularMesh(vertices=vertices)
    for u, v in edges:
        mesh.add_edge(u, v, hop_length=1)
    return mesh


class TestMeshInvariants:
    @given(random_mesh())
    @settings(max_examples=80, deadline=None)
    def test_triangles_are_cliques(self, mesh):
        for a, b, c in mesh.triangles():
            assert mesh.has_edge(a, b)
            assert mesh.has_edge(b, c)
            assert mesh.has_edge(a, c)

    @given(random_mesh())
    @settings(max_examples=80, deadline=None)
    def test_face_count_sum_is_three_times_triangles(self, mesh):
        counts = mesh.edge_face_counts()
        assert sum(counts.values()) == 3 * len(mesh.triangles())

    @given(random_mesh())
    @settings(max_examples=80, deadline=None)
    def test_manifold_implies_even_face_budget(self, mesh):
        """On a 2-manifold, 2E = 3F exactly."""
        if mesh.is_two_manifold():
            assert 2 * len(mesh.edges) == 3 * len(mesh.triangles())

    @given(random_mesh())
    @settings(max_examples=80, deadline=None)
    def test_remove_edge_removes_incident_triangles(self, mesh):
        if not mesh.edges:
            return
        target = sorted(mesh.edges)[0]
        before = {t for t in mesh.triangles()}
        mesh.remove_edge(*target)
        after = {t for t in mesh.triangles()}
        # Every removed triangle contained the removed edge.
        for tri in before - after:
            pairs = {edge_key(tri[0], tri[1]), edge_key(tri[1], tri[2]),
                     edge_key(tri[0], tri[2])}
            assert target in pairs
        # No new triangles appear.
        assert after <= before

    @given(random_mesh())
    @settings(max_examples=50, deadline=None)
    def test_adjacency_matches_edges(self, mesh):
        adj = mesh.adjacency()
        recovered = set()
        for u, nbrs in adj.items():
            for v in nbrs:
                recovered.add(edge_key(u, v))
        assert recovered == mesh.edges
