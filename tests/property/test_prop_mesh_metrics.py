"""Property-based tests for point-triangle distance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation.mesh_metrics import point_triangle_distance

coord = st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False, width=32)
point = arrays(np.float64, (3,), elements=coord)


class TestPointTriangleProperties:
    @given(point, point, point, point)
    @settings(max_examples=120, deadline=None)
    def test_bounded_by_vertex_distances(self, p, a, b, c):
        d = point_triangle_distance(p, a, b, c)
        assert d <= np.linalg.norm(p - a) + 1e-9
        assert d <= np.linalg.norm(p - b) + 1e-9
        assert d <= np.linalg.norm(p - c) + 1e-9

    @given(point, point, point)
    @settings(max_examples=80, deadline=None)
    def test_vertices_have_zero_distance(self, a, b, c):
        assert point_triangle_distance(a, a, b, c) < 1e-9
        assert point_triangle_distance(b, a, b, c) < 1e-9
        assert point_triangle_distance(c, a, b, c) < 1e-9

    @given(point, point, point, point)
    @settings(max_examples=80, deadline=None)
    def test_non_negative_and_symmetric_in_vertices(self, p, a, b, c):
        d1 = point_triangle_distance(p, a, b, c)
        d2 = point_triangle_distance(p, b, c, a)
        d3 = point_triangle_distance(p, c, a, b)
        assert d1 >= 0
        assert abs(d1 - d2) < 1e-7
        assert abs(d1 - d3) < 1e-7

    @given(point, point, point, point, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_barycentric_points_on_triangle(self, a, b, c, _p, u, v):
        """Any convex combination of the vertices has zero distance."""
        if u + v > 1.0:
            u, v = 1.0 - u, 1.0 - v
        w = 1.0 - u - v
        inside = u * a + v * b + w * c
        assert point_triangle_distance(inside, a, b, c) < 1e-7
