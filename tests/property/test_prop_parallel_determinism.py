"""Determinism properties of the process-parallel shard driver.

Three properties pin the parallel paths to the sequential semantics:

* **Worker-count invariance** -- the serialized detection result must be
  *byte-identical* for ``workers`` in {1, 2, 4}.  Sharding, worker
  processes, and the merge must leave no trace in the output.
* **Node-relabeling invariance** -- permuting node IDs (same geometry,
  new labels) must permute the detected boundary set and nothing else.
  UBF is a per-node geometric predicate; its verdict cannot depend on the
  ID a node happens to carry or the shard it lands in.
* **Frame-stage invariance** -- ``run_frames_parallel`` (step I sharded
  over processes) must return byte-identical coordinates and identical
  SMACOF step counts for any worker count, in every localization mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BoundaryDetector, DetectorConfig
from repro.core.parallel import (
    run_frames_parallel,
    run_ubf_parallel,
    shard_nodes,
)
from repro.core.ubf import run_ubf
from repro.io.serialization import save_detection_result
from repro.network.generator import DeploymentConfig, Network, generate_network
from repro.network.graph import NetworkGraph
from repro.network.measurement import UniformAbsoluteError, measure_distances
from repro.shapes.library import sphere_scenario

WORKER_COUNTS = (1, 2, 4)


class TestWorkerCountInvariance:
    def test_serialized_result_is_byte_identical(self, sphere_network, tmp_path):
        payloads = {}
        for workers in WORKER_COUNTS:
            detector = BoundaryDetector(DetectorConfig(workers=workers))
            result = detector.detect(sphere_network)
            path = tmp_path / f"result_w{workers}.json"
            save_detection_result(result, path)
            payloads[workers] = path.read_bytes()
        reference = payloads[WORKER_COUNTS[0]]
        for workers, payload in payloads.items():
            assert payload == reference, (
                f"workers={workers} produced different serialized bytes"
            )

    def test_outcomes_match_sequential(self, sphere_network):
        sequential = run_ubf(sphere_network)
        for workers in WORKER_COUNTS[1:]:
            parallel = run_ubf_parallel(sphere_network, workers=workers)
            assert parallel == sequential

    def test_shards_partition_nodes_in_order(self):
        nodes = list(range(103))
        for workers in (1, 2, 4, 7):
            shards = shard_nodes(nodes, workers)
            assert [n for shard in shards for n in shard] == nodes
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1


class TestNodeRelabelingInvariance:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_boundary_set_maps_through_permutation(self, sphere_network, workers):
        graph = sphere_network.graph
        rng = np.random.default_rng(42)
        perm = rng.permutation(graph.n_nodes)  # perm[new_id] = old_id

        permuted = Network(
            graph=NetworkGraph(
                graph.positions[perm], radio_range=graph.radio_range
            ),
            truth_boundary=sphere_network.truth_boundary[perm],
            scenario=sphere_network.scenario,
            scale=sphere_network.scale,
            config=sphere_network.config,
        )

        detector = BoundaryDetector(DetectorConfig(workers=workers))
        base = detector.detect(sphere_network)
        relabeled = detector.detect(permuted)

        # old boundary IDs, mapped into the permuted labeling
        old_to_new = np.empty(graph.n_nodes, dtype=int)
        old_to_new[perm] = np.arange(graph.n_nodes)
        expected_boundary = {int(old_to_new[v]) for v in base.boundary}
        expected_candidates = {int(old_to_new[v]) for v in base.candidates}

        assert relabeled.boundary == expected_boundary
        assert relabeled.candidates == expected_candidates
        assert sorted(map(len, relabeled.groups)) == sorted(map(len, base.groups))


@pytest.fixture(scope="module")
def measured_network():
    """A small sphere network with 30% measured-mode ranging error."""
    network = generate_network(
        sphere_scenario(),
        DeploymentConfig(n_surface=120, n_interior=200, target_degree=14, seed=8),
        scenario="sphere",
    )
    measured = measure_distances(
        network.graph, UniformAbsoluteError(0.3), np.random.default_rng(8)
    )
    return network, measured


def _frames_equal(a, b) -> bool:
    return (
        a.node == b.node
        and a.members == b.members
        and a.n_one_hop == b.n_one_hop
        and a.smacof_iterations == b.smacof_iterations
        and a.coordinates.tobytes() == b.coordinates.tobytes()
    )


class TestFrameStageWorkerInvariance:
    @pytest.mark.parametrize("mode", ("mds", "true"))
    def test_frames_byte_identical_across_worker_counts(
        self, measured_network, mode
    ):
        network, measured = measured_network
        reference = run_frames_parallel(network, measured, mode=mode, workers=1)
        assert [f.node for f in reference] == list(range(network.graph.n_nodes))
        for workers in WORKER_COUNTS[1:]:
            frames = run_frames_parallel(
                network, measured, mode=mode, workers=workers
            )
            assert all(_frames_equal(a, b) for a, b in zip(reference, frames)), (
                f"mode={mode} workers={workers} changed the frame bytes"
            )

    def test_engine_oracle_agrees_through_the_driver(self, measured_network):
        """Sharding composes with the engine contract: pernode through the
        driver yields the same members and step counts as batch."""
        network, measured = measured_network
        batch = run_frames_parallel(network, measured, workers=2)
        pernode = run_frames_parallel(
            network, measured, engine="pernode", workers=2
        )
        for a, b in zip(batch, pernode):
            assert a.members == b.members
            assert a.smacof_iterations == b.smacof_iterations

    def test_frames_feed_ubf_identically(self, measured_network):
        """UBF over precomputed frames equals UBF that localizes inline."""
        network, measured = measured_network
        frames = {
            f.node: f
            for f in run_frames_parallel(network, measured, workers=2)
        }
        with_frames = run_ubf_parallel(
            network, measured=measured, localization="mds", frames=frames
        )
        inline = run_ubf_parallel(
            network, measured=measured, localization="mds"
        )
        assert [o.is_candidate for o in with_frames] == [
            o.is_candidate for o in inline
        ]

    def test_invalid_mode_and_missing_measurements_rejected(
        self, measured_network
    ):
        network, _ = measured_network
        with pytest.raises(ValueError, match="mode"):
            run_frames_parallel(network, mode="fast")
        with pytest.raises(ValueError, match="measured"):
            run_frames_parallel(network, mode="mds")
