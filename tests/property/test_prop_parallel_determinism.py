"""Determinism properties of the process-parallel UBF shard driver.

Two properties pin the parallel path to the sequential semantics:

* **Worker-count invariance** -- the serialized detection result must be
  *byte-identical* for ``workers`` in {1, 2, 4}.  Sharding, worker
  processes, and the merge must leave no trace in the output.
* **Node-relabeling invariance** -- permuting node IDs (same geometry,
  new labels) must permute the detected boundary set and nothing else.
  UBF is a per-node geometric predicate; its verdict cannot depend on the
  ID a node happens to carry or the shard it lands in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BoundaryDetector, DetectorConfig
from repro.core.parallel import run_ubf_parallel, shard_nodes
from repro.core.ubf import run_ubf
from repro.io.serialization import save_detection_result
from repro.network.generator import Network
from repro.network.graph import NetworkGraph

WORKER_COUNTS = (1, 2, 4)


class TestWorkerCountInvariance:
    def test_serialized_result_is_byte_identical(self, sphere_network, tmp_path):
        payloads = {}
        for workers in WORKER_COUNTS:
            detector = BoundaryDetector(DetectorConfig(workers=workers))
            result = detector.detect(sphere_network)
            path = tmp_path / f"result_w{workers}.json"
            save_detection_result(result, path)
            payloads[workers] = path.read_bytes()
        reference = payloads[WORKER_COUNTS[0]]
        for workers, payload in payloads.items():
            assert payload == reference, (
                f"workers={workers} produced different serialized bytes"
            )

    def test_outcomes_match_sequential(self, sphere_network):
        sequential = run_ubf(sphere_network)
        for workers in WORKER_COUNTS[1:]:
            parallel = run_ubf_parallel(sphere_network, workers=workers)
            assert parallel == sequential

    def test_shards_partition_nodes_in_order(self):
        nodes = list(range(103))
        for workers in (1, 2, 4, 7):
            shards = shard_nodes(nodes, workers)
            assert [n for shard in shards for n in shard] == nodes
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1


class TestNodeRelabelingInvariance:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_boundary_set_maps_through_permutation(self, sphere_network, workers):
        graph = sphere_network.graph
        rng = np.random.default_rng(42)
        perm = rng.permutation(graph.n_nodes)  # perm[new_id] = old_id

        permuted = Network(
            graph=NetworkGraph(
                graph.positions[perm], radio_range=graph.radio_range
            ),
            truth_boundary=sphere_network.truth_boundary[perm],
            scenario=sphere_network.scenario,
            scale=sphere_network.scale,
            config=sphere_network.config,
        )

        detector = BoundaryDetector(DetectorConfig(workers=workers))
        base = detector.detect(sphere_network)
        relabeled = detector.detect(permuted)

        # old boundary IDs, mapped into the permuted labeling
        old_to_new = np.empty(graph.n_nodes, dtype=int)
        old_to_new[perm] = np.arange(graph.n_nodes)
        expected_boundary = {int(old_to_new[v]) for v in base.boundary}
        expected_candidates = {int(old_to_new[v]) for v in base.candidates}

        assert relabeled.boundary == expected_boundary
        assert relabeled.candidates == expected_candidates
        assert sorted(map(len, relabeled.groups)) == sorted(map(len, base.groups))
