"""Property-based tests for shape invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shapes.csg import Difference
from repro.shapes.pipe import BentPipe
from repro.shapes.solids import AxisAlignedBox, Cylinder, Sphere, Torus


def _shapes():
    return st.sampled_from(
        [
            Sphere(radius=1.0),
            Sphere(center=(1, 2, 3), radius=0.7),
            AxisAlignedBox((0, 0, 0), (2, 1, 1)),
            Cylinder(radius=0.8, height=1.6),
            Torus(major=1.5, minor=0.4),
            BentPipe(bend_radius=1.0, tube_radius=0.3),
            Difference(Sphere(radius=1.0), [Sphere(center=(0.3, 0, 0), radius=0.3)]),
        ]
    )


class TestShapeInvariants:
    @given(_shapes(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_interior_samples_inside(self, shape, seed):
        rng = np.random.default_rng(seed)
        pts = shape.sample_interior(50, rng)
        assert shape.contains(pts).all()

    @given(_shapes(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_interior_within_bounding_box(self, shape, seed):
        rng = np.random.default_rng(seed)
        pts = shape.sample_interior(50, rng)
        lo, hi = shape.bounding_box
        assert (pts >= lo - 1e-9).all()
        assert (pts <= hi + 1e-9).all()

    @given(_shapes(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_surface_within_bounding_box(self, shape, seed):
        rng = np.random.default_rng(seed)
        pts = shape.sample_surface(50, rng)
        lo, hi = shape.bounding_box
        assert (pts >= lo - 1e-9).all()
        assert (pts <= hi + 1e-9).all()

    @given(_shapes(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_surface_points_near_membership_frontier(self, shape, seed):
        """An epsilon-ball around a surface point straddles the membership
        frontier: probing several directions finds both an inside and an
        outside classification.

        A single probe direction is not enough -- e.g. for a point on a
        spherical end cap, the direction toward an interior anchor can be
        tangent to the cap, leaving both +/-eps probes outside.  Probing the
        anchor direction plus a batch of seeded random directions makes the
        frontier property robust to such tangencies.
        """
        rng = np.random.default_rng(seed)
        pts = shape.sample_surface(20, rng)
        anchor = shape.sample_interior(1, np.random.default_rng(0))[0]
        probe_rng = np.random.default_rng(1)
        extra_dirs = probe_rng.normal(size=(8, 3))
        extra_dirs /= np.linalg.norm(extra_dirs, axis=1, keepdims=True)
        eps = 1e-3
        for p in pts:
            directions = [anchor - p, *extra_dirs]
            verdicts = []
            for direction in directions:
                norm = np.linalg.norm(direction)
                if norm < 1e-6:
                    continue
                step = eps * direction / norm
                verdicts.append(shape.contains_point(p + step))
                verdicts.append(shape.contains_point(p - step))
            assert any(verdicts), f"no probe around {p} falls inside"
            assert not all(verdicts), f"no probe around {p} falls outside"

    @given(_shapes(), st.integers(0, 1000), st.integers(1001, 2000))
    @settings(max_examples=20, deadline=None)
    def test_sampling_deterministic_per_seed(self, shape, seed_a, seed_b):
        a1 = shape.sample_surface(10, np.random.default_rng(seed_a))
        a2 = shape.sample_surface(10, np.random.default_rng(seed_a))
        b = shape.sample_surface(10, np.random.default_rng(seed_b))
        assert np.allclose(a1, a2)
        assert not np.allclose(a1, b)
