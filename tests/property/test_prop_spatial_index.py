"""Property-based tests for the spatial grid index."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.spatial_index import UniformGridIndex

coord = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False, width=32)


class TestIndexProperties:
    @given(
        arrays(np.float64, (40, 3), elements=coord),
        arrays(np.float64, (3,), elements=coord),
        st.floats(0.2, 3.0),
        st.floats(0.2, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_matches_brute_force(self, points, query, radius, cell):
        index = UniformGridIndex(points, cell_size=cell)
        got = set(index.query_radius(query, radius).tolist())
        dists = np.linalg.norm(points - query, axis=1)
        expected = set(np.flatnonzero(dists <= radius).tolist())
        assert got == expected

    @given(
        arrays(np.float64, (30, 3), elements=coord),
        st.floats(0.3, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_pairs_symmetric_in_radius(self, points, radius):
        """neighbor_pairs covers exactly the <=radius pairs, i<j."""
        index = UniformGridIndex(points, cell_size=1.0)
        pairs = index.neighbor_pairs(radius)
        for i, j in pairs:
            assert i < j
            assert np.linalg.norm(points[i] - points[j]) <= radius + 1e-12
