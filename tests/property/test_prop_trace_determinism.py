"""Worker-count invariance of exported traces.

The parallel UBF driver shards by the fixed :data:`SHARD_SIZE`, times each
shard with a fresh clock from the tracer's ``shard_clock`` factory, and
grafts worker-produced span dicts in shard order -- so under a
deterministic injected clock the exported JSONL trace must be
*byte-identical* for any worker count.  Process distribution is an
execution detail; it must leave no trace in the trace.
"""

from __future__ import annotations

from repro.core.parallel import SHARD_SIZE, run_ubf_parallel, shard_nodes_by_size
from repro.observability.export import trace_lines, validate_trace_lines
from repro.observability.tracer import TickClock, Tracer

WORKER_COUNTS = (1, 2, 4)


def _traced_run(network, workers: int):
    tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
    outcomes = run_ubf_parallel(network, workers=workers, tracer=tracer)
    return outcomes, trace_lines(tracer.roots)


class TestTraceWorkerCountInvariance:
    def test_trace_bytes_identical_across_worker_counts(self, sphere_network):
        assert sphere_network.graph.n_nodes > SHARD_SIZE  # multiple shards
        reference_outcomes, reference_lines = _traced_run(sphere_network, 1)
        assert validate_trace_lines(reference_lines) == []
        for workers in WORKER_COUNTS[1:]:
            outcomes, lines = _traced_run(sphere_network, workers)
            assert outcomes == reference_outcomes
            assert lines == reference_lines, (
                f"workers={workers} produced a different trace"
            )

    def test_one_shard_span_per_fixed_size_shard(self, sphere_network):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        run_ubf_parallel(sphere_network, workers=2, tracer=tracer)
        (ubf_span,) = tracer.roots
        assert ubf_span.name == "ubf"
        shards = shard_nodes_by_size(range(sphere_network.graph.n_nodes))
        shard_spans = [c for c in ubf_span.children if c.name == "ubf.shard"]
        assert len(shard_spans) == len(shards)
        for span, shard in zip(shard_spans, shards):
            assert span.attrs["n_nodes"] == len(shard)
            assert span.attrs["node_first"] == shard[0]
            assert span.attrs["node_last"] == shard[-1]

    def test_shard_counters_sum_to_stage_counters(self, sphere_network):
        tracer = Tracer(clock=TickClock(), shard_clock=TickClock)
        run_ubf_parallel(sphere_network, workers=4, tracer=tracer)
        (ubf_span,) = tracer.roots
        shard_spans = [c for c in ubf_span.children if c.name == "ubf.shard"]
        for key in ("n_candidates", "balls_tested", "points_checked"):
            assert ubf_span.attrs[key] == sum(s.attrs[key] for s in shard_spans)

    def test_untraced_parallel_results_unchanged(self, sphere_network):
        baseline = run_ubf_parallel(sphere_network, workers=1)
        traced, _ = _traced_run(sphere_network, 2)
        assert traced == baseline
