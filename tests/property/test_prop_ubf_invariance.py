"""UBF must be invariant to the local frame's rigid ambiguity.

MDS frames are arbitrary up to rotation, translation, and reflection;
the boundary decision cannot depend on which representative the node
happened to compute.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.ballfit import empty_ball_exists
from repro.geometry.transforms import random_rotation_matrix

coord = st.floats(-0.875, 0.875, allow_nan=False, allow_infinity=False, width=32)


class TestRigidInvariance:
    @given(
        arrays(np.float64, (9, 3), elements=coord),
        st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_translation_invariance(self, neighbors, seed):
        rng = np.random.default_rng(seed)
        rotation = random_rotation_matrix(rng)
        translation = rng.normal(scale=5.0, size=3)

        base = empty_ball_exists(np.zeros(3), neighbors, 1.0)
        moved = empty_ball_exists(
            translation,
            neighbors @ rotation.T + translation,
            1.0,
        )
        assert base.is_boundary == moved.is_boundary

    @given(arrays(np.float64, (9, 3), elements=coord))
    @settings(max_examples=60, deadline=None)
    def test_reflection_invariance(self, neighbors):
        mirror = np.array([-1.0, 1.0, 1.0])
        base = empty_ball_exists(np.zeros(3), neighbors, 1.0)
        mirrored = empty_ball_exists(np.zeros(3), neighbors * mirror, 1.0)
        assert base.is_boundary == mirrored.is_boundary

    @given(
        arrays(np.float64, (9, 3), elements=coord),
        st.floats(0.5, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_scaling_with_radius(self, neighbors, factor):
        """Scaling the geometry and the ball radius together is neutral."""
        base = empty_ball_exists(np.zeros(3), neighbors, 1.0)
        scaled = empty_ball_exists(np.zeros(3), neighbors * factor, factor)
        assert base.is_boundary == scaled.is_boundary