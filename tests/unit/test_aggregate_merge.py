"""Unit tests for the Fig. 11 aggregate-sweep merge arithmetic.

`run_aggregate_sweep` itself is exercised by the benches; these tests pin
the merge semantics (count addition, histogram union) on hand-built
inputs by calling the merge path through a stubbed sweep.
"""

import numpy as np
import pytest

from repro.evaluation.experiments import ErrorSweepPoint, run_aggregate_sweep
from repro.evaluation.metrics import DetectionStats


class TestMergeSemantics:
    def test_counts_add_and_histograms_union(self, monkeypatch):
        levels = (0.0, 0.5)

        def fake_sweep(network, lv, detector_config=None, seed=0, **kwargs):
            base = 100 if seed < 1000 else 200  # distinguish the networks
            return [
                ErrorSweepPoint(
                    level=level,
                    stats=DetectionStats(
                        n_truth=base,
                        n_found=base - 10,
                        n_correct=base - 20,
                        n_mistaken=10,
                        n_missing=20,
                    ),
                    mistaken_hops={1: base // 10, 2: 1},
                    missing_hops={1: 2},
                )
                for level in lv
            ]

        def fake_generate(shape, deployment, scenario=""):
            return object()

        import repro.evaluation.experiments as exp

        monkeypatch.setattr(exp, "run_error_sweep", fake_sweep)
        monkeypatch.setattr(exp, "generate_network", fake_generate)
        monkeypatch.setattr(exp, "scenario_by_name", lambda name: None)

        merged = run_aggregate_sweep(
            ["a", "b"], deployment=None, levels=levels, seed=0
        )
        assert len(merged) == 2
        point = merged[0]
        assert point.stats.n_truth == 300
        assert point.stats.n_found == 280  # (100-10) + (200-10)
        assert point.stats.n_correct == 260
        assert point.stats.n_mistaken == 20
        assert point.stats.n_missing == 40
        assert point.mistaken_hops == {1: 30, 2: 2}
        assert point.missing_hops == {1: 4}

    def test_percentages_follow_merged_counts(self):
        stats = DetectionStats(
            n_truth=300, n_found=270, n_correct=260, n_mistaken=10, n_missing=40
        )
        assert stats.correct_pct == pytest.approx(260 / 300)
        assert stats.missing_pct == pytest.approx(40 / 300)
