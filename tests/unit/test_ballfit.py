"""Unit tests for the unit-ball fitting solver (the heart of UBF)."""

import numpy as np
import pytest

from repro.geometry.ballfit import (
    balls_through_point_pairs,
    balls_through_three_points,
    empty_ball_exists,
)


class TestBallsThroughThreePoints:
    def test_two_solutions_for_small_triangle(self):
        centers = balls_through_three_points(
            [0, 0, 0], [1, 0, 0], [0, 1, 0], radius=1.0
        )
        assert len(centers) == 2
        for c in centers:
            for p in ([0, 0, 0], [1, 0, 0], [0, 1, 0]):
                assert np.linalg.norm(c - np.asarray(p, float)) == pytest.approx(1.0)

    def test_centers_mirror_across_plane(self):
        centers = balls_through_three_points(
            [0, 0, 0], [1, 0, 0], [0, 1, 0], radius=1.0
        )
        # Triangle lies in z=0; the two centers mirror in z.
        assert centers[0][2] == pytest.approx(-centers[1][2])

    def test_no_solution_when_circumradius_exceeds_radius(self):
        # Equilateral triangle with side 2 has circumradius 2/sqrt(3) > 1.
        centers = balls_through_three_points(
            [0, 0, 0], [2, 0, 0], [1, np.sqrt(3), 0], radius=1.0
        )
        assert centers == []

    def test_tangent_case_single_solution(self):
        # Equilateral triangle with circumradius exactly equal to radius.
        r = 1.0
        side = r * np.sqrt(3)
        centers = balls_through_three_points(
            [0, 0, 0], [side, 0, 0], [side / 2, side * np.sqrt(3) / 2, 0], radius=r
        )
        assert len(centers) == 1

    def test_collinear_returns_empty(self):
        assert (
            balls_through_three_points([0, 0, 0], [1, 0, 0], [2, 0, 0], 1.0) == []
        )

    def test_radius_scaling(self, rng):
        """Scaling points and radius together scales the centers."""
        pts = rng.normal(size=(3, 3)) * 0.3
        centers1 = balls_through_three_points(*pts, radius=1.0)
        centers2 = balls_through_three_points(*(2.0 * pts), radius=2.0)
        assert len(centers1) == len(centers2)
        for c1, c2 in zip(centers1, centers2):
            assert np.allclose(2.0 * c1, c2, atol=1e-9)


class TestBallsThroughPointPairs:
    def test_matches_scalar_solver(self, rng):
        origin = np.zeros(3)
        others = rng.uniform(-0.8, 0.8, size=(6, 3))
        centers, pairs = balls_through_point_pairs(origin, others, radius=1.0)
        # Re-derive each center with the scalar solver.
        for center, (j, k) in zip(centers, pairs):
            candidates = balls_through_three_points(
                origin, others[j], others[k], radius=1.0
            )
            assert any(np.allclose(center, c, atol=1e-9) for c in candidates)

    def test_empty_for_fewer_than_two_neighbors(self):
        centers, pairs = balls_through_point_pairs(
            np.zeros(3), np.array([[1.0, 0, 0]]), radius=1.0
        )
        assert centers.shape == (0, 3)
        assert pairs.shape == (0, 2)

    def test_all_centers_at_radius_from_origin(self, rng):
        origin = rng.normal(size=3)
        others = origin + rng.uniform(-0.7, 0.7, size=(8, 3))
        centers, _ = balls_through_point_pairs(origin, others, radius=1.0)
        dists = np.linalg.norm(centers - origin, axis=1)
        assert np.allclose(dists, 1.0, atol=1e-7)

    def test_collinear_pairs_skipped(self):
        origin = np.zeros(3)
        others = np.array([[0.5, 0, 0], [1.0, 0, 0]])  # collinear with origin
        centers, _ = balls_through_point_pairs(origin, others, radius=1.0)
        assert centers.shape[0] == 0


class TestEmptyBallExists:
    def test_isolated_surface_point_is_boundary(self):
        """A point with neighbors only on one side can fit an empty ball."""
        origin = np.zeros(3)
        # Neighbors all below the z=0 plane.
        neighbors = np.array(
            [[0.5, 0, -0.3], [-0.5, 0, -0.3], [0, 0.5, -0.3], [0, -0.5, -0.3]]
        )
        result = empty_ball_exists(origin, neighbors, radius=1.0)
        assert result.is_boundary
        assert result.empty_center is not None
        assert result.witness_pair is not None

    def test_surrounded_point_is_interior(self):
        """A node inside a dense shell of neighbors finds no empty ball."""
        rng = np.random.default_rng(3)
        directions = rng.normal(size=(120, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = rng.uniform(0.35, 0.95, size=120)
        neighbors = directions * radii[:, None]
        result = empty_ball_exists(np.zeros(3), neighbors, radius=1.0)
        assert not result.is_boundary
        assert result.empty_center is None

    def test_fewer_than_two_neighbors_is_boundary(self):
        result = empty_ball_exists(np.zeros(3), np.array([[0.5, 0, 0]]), 1.0)
        assert result.is_boundary

    def test_check_points_block_ball(self):
        """A blocker passed via check_points (2-hop info) prevents emptiness."""
        origin = np.zeros(3)
        neighbors = np.array([[0.6, 0, 0], [0, 0.6, 0]])
        # Without extra check points the ball through these is empty.
        open_result = empty_ball_exists(origin, neighbors, radius=1.0)
        assert open_result.is_boundary
        # Fill space densely with far blockers visible only via check_points.
        rng = np.random.default_rng(4)
        dirs = rng.normal(size=(400, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        blockers = dirs * rng.uniform(0.3, 1.9, size=400)[:, None]
        closed_result = empty_ball_exists(
            origin, neighbors, radius=1.0, check_points=np.vstack([neighbors, blockers])
        )
        assert not closed_result.is_boundary

    def test_find_first_counts_fewer_balls(self):
        origin = np.zeros(3)
        neighbors = np.array(
            [[0.5, 0, -0.3], [-0.5, 0, -0.3], [0, 0.5, -0.3], [0, -0.5, -0.3]]
        )
        first = empty_ball_exists(origin, neighbors, 1.0, find_first=True)
        full = empty_ball_exists(origin, neighbors, 1.0, find_first=False)
        assert first.balls_tested <= full.balls_tested

    def test_defining_nodes_do_not_block(self):
        """The three on-sphere nodes must not count as 'inside' their ball."""
        origin = np.zeros(3)
        neighbors = np.array([[0.8, 0, 0], [0, 0.8, 0]])
        result = empty_ball_exists(origin, neighbors, radius=1.0)
        assert result.is_boundary
