"""The ``localization`` bench stage and its regression gate.

The stage times measured-mode frame construction (sparse engine by
default), runs the pernode oracle once over the pinned node subsample for
the ``speedup_vs_pernode`` ratio, and verifies the engine contract there
(``engines_agree``).  The gate logic is tested on synthetic artifacts so
it stays fast and timing-independent.
"""

from __future__ import annotations

import pytest

from repro.evaluation.bench import (
    BENCH_ORACLE_SAMPLE,
    BENCH_SCENARIOS,
    STAGES,
    BenchScenario,
    bench_localization,
    build_context,
    compare_artifact,
    oracle_sample_nodes,
    render_bench_table,
    run_bench,
)

TINY = BenchScenario(
    name="tiny",
    shape="sphere",
    n_surface=80,
    n_interior=120,
    target_degree=12.0,
    seed=11,
)


@pytest.fixture(scope="module")
def tiny_doc():
    return bench_localization(build_context(TINY), repeat=1)


class TestBenchLocalizationStage:
    def test_stage_registered(self):
        assert "localization" in STAGES
        assert STAGES.index("localization") == 0  # pipeline order

    def test_artifact_shape(self, tiny_doc):
        assert tiny_doc["stage"] == "localization"
        assert tiny_doc["engine"] == "sparse"
        assert tiny_doc["measurement_error"] == 0.3
        counters = tiny_doc["counters"]
        assert counters["n_frames"] == TINY.n_surface + TINY.n_interior
        assert counters["total_members"] >= counters["n_frames"]
        assert counters["max_frame_size"] >= counters["mean_frame_size"]
        assert counters["total_smacof_iterations"] > 0

    def test_oracle_side_of_the_gate(self, tiny_doc):
        assert tiny_doc["pernode_seconds"] > 0
        assert tiny_doc["speedup_vs_pernode"] > 0
        assert tiny_doc["engines_agree"] is True
        assert tiny_doc["oracle"] == "sampled"
        assert tiny_doc["oracle_nodes"] == len(
            oracle_sample_nodes(TINY.n_surface + TINY.n_interior)
        )

    def test_full_oracle_opt_in(self):
        doc = bench_localization(build_context(TINY), repeat=1, full_oracle=True)
        assert doc["oracle"] == "full"
        assert doc["oracle_nodes"] == TINY.n_surface + TINY.n_interior
        assert doc["engines_agree"] is True

    def test_batch_engine_still_benchable(self):
        doc = bench_localization(build_context(TINY), repeat=1, engine="batch")
        assert doc["engine"] == "batch"
        assert doc["engines_agree"] is True

    def test_skip_pernode_omits_gate_fields(self):
        doc = bench_localization(build_context(TINY), repeat=1, time_pernode=False)
        assert "pernode_seconds" not in doc
        assert "speedup_vs_pernode" not in doc
        assert "engines_agree" not in doc

    def test_oracle_sample_is_pinned_and_spans_the_network(self):
        sample = oracle_sample_nodes(2000)
        assert sample == oracle_sample_nodes(2000)  # deterministic
        assert len(sample) <= BENCH_ORACLE_SAMPLE
        assert len(sample) >= BENCH_ORACLE_SAMPLE // 2
        assert sample[0] == 0 and sample[-1] > 1900  # spans the id range
        assert len(set(sample)) == len(sample)
        # Small networks keep every node: the gate never loses coverage
        # by sampling below the sample size.
        assert oracle_sample_nodes(50) == list(range(50))

    def test_run_bench_dispatch_and_table(self):
        results = run_bench(
            ["localization"], scenario_id="small", repeat=1, time_naive=False
        )
        assert set(results) == {"localization"}
        table = render_bench_table(results)
        assert "localization" in table

    def test_pinned_scenario_unchanged(self):
        """The gate is measured on the pinned 2000-node sphere."""
        pinned = BENCH_SCENARIOS["ubf_2k"]
        assert (pinned.n_surface, pinned.n_interior) == (800, 1200)
        assert pinned.seed == 11

    def test_loc_20k_scenario_pinned(self):
        """The scale scenario: 20k nodes, same shape/degree/seed family."""
        pinned = BENCH_SCENARIOS["loc_20k"]
        assert (pinned.n_surface, pinned.n_interior) == (6000, 14000)
        assert pinned.target_degree == 24.0
        assert pinned.seed == 11


def _loc_artifact(**extra):
    doc = {
        "format_version": 1,
        "stage": "localization",
        "scenario": "ubf_2k",
        "n_nodes": 2000,
        "mean_degree": 24.0,
        "repeat": 1,
        "median_seconds": 1.0,
        "timings": [1.0],
        "counters": {"n_frames": 2000.0},
    }
    doc.update(extra)
    return doc


class TestEngineSpeedupGate:
    def test_speedup_below_floor_flagged(self):
        baseline = _loc_artifact(speedup_vs_pernode=3.5)
        current = _loc_artifact(speedup_vs_pernode=2.1, engines_agree=True)
        issues = compare_artifact(current, baseline)
        assert any("below the required 3.0x" in i for i in issues)

    def test_speedup_at_floor_passes(self):
        baseline = _loc_artifact(speedup_vs_pernode=3.5)
        current = _loc_artifact(speedup_vs_pernode=3.0, engines_agree=True)
        assert compare_artifact(current, baseline) == []

    def test_engine_disagreement_flagged(self):
        baseline = _loc_artifact(speedup_vs_pernode=3.5)
        current = _loc_artifact(speedup_vs_pernode=4.0, engines_agree=False)
        issues = compare_artifact(current, baseline)
        assert any("engines disagree" in i for i in issues)

    def test_custom_floor_respected(self):
        baseline = _loc_artifact(speedup_vs_pernode=3.5)
        current = _loc_artifact(speedup_vs_pernode=3.2, engines_agree=True)
        issues = compare_artifact(current, baseline, min_engine_speedup=4.0)
        assert any("below the required 4.0x" in i for i in issues)

    def test_counter_drift_still_checked(self):
        baseline = _loc_artifact(speedup_vs_pernode=3.5)
        current = _loc_artifact(speedup_vs_pernode=3.5, engines_agree=True)
        current["counters"] = {"n_frames": 1800.0}
        issues = compare_artifact(current, baseline)
        assert any("n_frames drifted" in i for i in issues)


class TestPeakRssGate:
    def test_rss_regression_flagged(self):
        baseline = _loc_artifact(peak_rss_bytes=100 * 2**20)
        current = _loc_artifact(peak_rss_bytes=250 * 2**20)
        issues = compare_artifact(current, baseline)
        assert any("peak RSS regressed" in i for i in issues)

    def test_rss_within_factor_passes(self):
        baseline = _loc_artifact(peak_rss_bytes=100 * 2**20)
        current = _loc_artifact(peak_rss_bytes=199 * 2**20)
        assert compare_artifact(current, baseline) == []

    def test_rss_custom_factor(self):
        baseline = _loc_artifact(peak_rss_bytes=100 * 2**20)
        current = _loc_artifact(peak_rss_bytes=150 * 2**20)
        issues = compare_artifact(current, baseline, rss_factor=1.2)
        assert any("peak RSS regressed" in i for i in issues)

    def test_rss_absent_on_either_side_is_skipped(self):
        # Baselines predating the RSS field (or non-POSIX runs) gate
        # nothing rather than failing spuriously.
        assert compare_artifact(_loc_artifact(), _loc_artifact()) == []
        assert (
            compare_artifact(
                _loc_artifact(peak_rss_bytes=2**30), _loc_artifact()
            )
            == []
        )
        assert (
            compare_artifact(
                _loc_artifact(), _loc_artifact(peak_rss_bytes=2**10)
            )
            == []
        )
