"""Cross-path equivalence: a cell's result is a pure function of identity.

The RNG-consistency contract (identity-derived substreams, see
``repro.evaluation.seeding``): a sweep cell produces the *same* result
whether it runs standalone (``run_error_cell`` / ``run_fault_cell``),
inside a hand-rolled sweep (``run_error_sweep`` / ``run_robustness_sweep``
of any shape or order), or as a campaign job (``execute_cell`` /
``execute_job``).  These tests pin that equivalence on every path pair.
"""

from __future__ import annotations

import pytest

from repro.core.config import DetectorConfig, IFFConfig, UBFConfig
from repro.evaluation.campaign import (
    CELL_KIND_ERROR,
    CELL_KIND_FAULT,
    CampaignSpec,
    error_point_from_doc,
    execute_cell,
    expand,
    fault_point_from_doc,
)
from repro.evaluation.experiments import run_error_cell, run_error_sweep
from repro.evaluation.robustness import run_fault_cell, run_robustness_sweep
from repro.network.generator import DeploymentConfig, generate_network
from repro.runtime.protocols import RetryPolicy
from repro.shapes.library import scenario_by_name

DEPLOYMENT = DeploymentConfig(
    n_surface=60, n_interior=100, target_degree=12.0, seed=0
)
CONFIG = DetectorConfig(ubf=UBFConfig(epsilon=1e-3), iff=IFFConfig(theta=10, ttl=3))


@pytest.fixture(scope="module")
def network():
    return generate_network(
        scenario_by_name("sphere"), DEPLOYMENT, scenario="sphere"
    )


def campaign_cell_params(kind: str, **axes):
    """The campaign payload matching DEPLOYMENT/CONFIG for one axis point."""
    spec_kwargs = dict(
        name="xpath",
        scenarios=("sphere",),
        seeds=(0,),
        n_surface=60,
        n_interior=100,
        target_degree=12.0,
        theta=10,
        ttl=3,
    )
    if kind == CELL_KIND_ERROR:
        spec = CampaignSpec(kind="error_sweep", levels=(axes["level"],), **spec_kwargs)
    else:
        spec = CampaignSpec(
            kind="robustness",
            loss_rates=(axes["loss"],),
            crash_fractions=(axes["crash"],),
            modes=(axes["mode"],),
            max_retries=4,
            **spec_kwargs,
        )
    (cell,) = expand(spec)
    return cell.params


class TestErrorCellPaths:
    def test_standalone_equals_sweep_member_any_shape(self, network):
        standalone = run_error_cell(
            network, 0.3, detector_config=CONFIG, seed=0
        )
        short = run_error_sweep(network, (0.3,), detector_config=CONFIG, seed=0)
        long = run_error_sweep(
            network, (0.1, 0.3, 0.5), detector_config=CONFIG, seed=0
        )
        assert short[0] == standalone
        assert long[1] == standalone

    def test_duplicate_levels_are_identical_cells(self, network):
        """Same identity => same substream: duplicate levels now agree."""
        twice = run_error_sweep(network, (0.3, 0.3), detector_config=CONFIG, seed=0)
        assert twice[0] == twice[1]

    def test_campaign_cell_equals_standalone(self, network):
        standalone = run_error_cell(network, 0.3, detector_config=CONFIG, seed=0)
        doc = execute_cell(
            CELL_KIND_ERROR, campaign_cell_params(CELL_KIND_ERROR, level=0.3)
        )
        assert error_point_from_doc(doc) == standalone


class TestFaultCellPaths:
    def test_standalone_equals_sweep_member_any_shape(self, network):
        standalone = run_fault_cell(
            network, 0.3, 0.2, detector_config=CONFIG, seed=0
        )
        single = run_robustness_sweep(
            network, loss_rates=(0.3,), crash_fractions=(0.2,),
            detector_config=CONFIG, seed=0,
        )
        grid = run_robustness_sweep(
            network, loss_rates=(0.0, 0.3), crash_fractions=(0.0, 0.2),
            detector_config=CONFIG, seed=0,
        )
        assert single[0] == standalone
        assert grid[3] == standalone

    def test_sweep_order_invariance(self, network):
        """Reversing the grid axes permutes, never changes, the cells."""
        fwd = run_robustness_sweep(
            network, loss_rates=(0.0, 0.3), crash_fractions=(0.0, 0.2),
            detector_config=CONFIG, seed=0,
        )
        rev = run_robustness_sweep(
            network, loss_rates=(0.3, 0.0), crash_fractions=(0.2, 0.0),
            detector_config=CONFIG, seed=0,
        )
        by_cell = {(p.crash_fraction, p.loss_rate): p for p in fwd}
        assert len(by_cell) == 4
        for point in rev:
            assert point == by_cell[(point.crash_fraction, point.loss_rate)]

    def test_raw_and_reliable_share_the_substream(self, network):
        """Paired comparison: mode is excluded from the cell identity, so
        the crash sample (and hence n_truth exposure) matches across modes."""
        raw = run_fault_cell(network, 0.0, 0.3, detector_config=CONFIG, seed=0)
        reliable = run_fault_cell(
            network, 0.0, 0.3, detector_config=CONFIG,
            retry_policy=RetryPolicy(max_retries=4), seed=0,
        )
        # Lossless: the reliable wrapper changes overhead, not the outcome.
        assert reliable.n_found == raw.n_found
        assert reliable.f1 == raw.f1

    def test_campaign_cell_equals_standalone(self, network):
        standalone = run_fault_cell(
            network, 0.3, 0.0, detector_config=CONFIG,
            retry_policy=RetryPolicy(max_retries=4, rto=2), seed=0,
        )
        doc = execute_cell(
            CELL_KIND_FAULT,
            campaign_cell_params(
                CELL_KIND_FAULT, loss=0.3, crash=0.0, mode="reliable"
            ),
        )
        assert fault_point_from_doc(doc) == standalone


class TestExecuteCellErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign cell kind"):
            execute_cell("eval.mystery", {})

    def test_missing_payload_rejected(self):
        with pytest.raises(ValueError, match="no cell parameters"):
            execute_cell(CELL_KIND_ERROR, None)
