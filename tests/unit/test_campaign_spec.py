"""Unit tests: campaign spec schema, cell expansion, docs, rendering."""

from __future__ import annotations

import json

import pytest

from repro.evaluation.campaign import (
    CELL_KIND_ERROR,
    CELL_KIND_FAULT,
    CampaignSpec,
    expand,
    error_point_doc,
    error_point_from_doc,
    fault_point_doc,
    fault_point_from_doc,
    load_spec,
    render_campaign_tables,
)
from repro.evaluation.experiments import ErrorSweepPoint
from repro.evaluation.metrics import DetectionStats
from repro.evaluation.robustness import RobustnessPoint


def error_spec(**overrides) -> CampaignSpec:
    base = dict(name="t-err", kind="error_sweep", levels=(0.0, 0.2))
    base.update(overrides)
    return CampaignSpec(**base)


def fault_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="t-rob",
        kind="robustness",
        loss_rates=(0.0, 0.3),
        crash_fractions=(0.0,),
        modes=("raw",),
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            CampaignSpec(name="x", kind="sweep")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="campaign name"):
            error_spec(name="has spaces")
        with pytest.raises(ValueError, match="campaign name"):
            error_spec(name="")

    def test_error_sweep_needs_levels(self):
        with pytest.raises(ValueError, match="levels"):
            CampaignSpec(name="x", kind="error_sweep")

    def test_robustness_needs_loss_rates(self):
        with pytest.raises(ValueError, match="loss_rates"):
            CampaignSpec(name="x", kind="robustness")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="modes"):
            fault_spec(modes=("raw", "best-effort"))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            error_spec(scenarios=())
        with pytest.raises(ValueError, match="seed"):
            error_spec(seeds=())

    def test_variant_needs_unique_names_and_known_keys(self):
        with pytest.raises(ValueError, match="'name'"):
            error_spec(variants=({"theta": 8},))
        with pytest.raises(ValueError, match="duplicate variant"):
            error_spec(variants=({"name": "a"}, {"name": "a"}))
        with pytest.raises(ValueError, match="unknown keys"):
            error_spec(variants=({"name": "a", "kernel": "naive"},))

    def test_from_dict_rejects_unknown_keys_and_versions(self):
        doc = error_spec().as_dict()
        doc["grid"] = [1]
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict(doc)
        doc = error_spec().as_dict()
        doc["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            CampaignSpec.from_dict(doc)

    def test_round_trip_preserves_spec_and_hash(self):
        spec = fault_spec(modes=("raw", "reliable"), variants=({"name": "a"},))
        again = CampaignSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_load_spec_errors(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_spec(bad)
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError, match="JSON object"):
            load_spec(arr)


class TestExpansion:
    def test_error_sweep_order_and_payload(self):
        spec = error_spec(
            seeds=(0, 1), variants=({"name": "base"}, {"name": "t8", "theta": 8})
        )
        cells = expand(spec)
        # scenario x seed x variant x level, slice-major.
        assert len(cells) == 1 * 2 * 2 * 2
        assert [c.index for c in cells] == list(range(8))
        assert cells[0].kind == CELL_KIND_ERROR
        assert cells[0].axes == {
            "scenario": "sphere",
            "seed": 0,
            "variant": "base",
            "level": 0.0,
        }
        # The variant override lands in the cell payload.
        t8 = [c for c in cells if c.axes["variant"] == "t8"]
        assert all(c.params["theta"] == 8 for c in t8)
        base = [c for c in cells if c.axes["variant"] == "base"]
        assert all(c.params["theta"] == spec.theta for c in base)

    def test_robustness_order_is_mode_major_then_crash_loss(self):
        spec = fault_spec(
            loss_rates=(0.0, 0.3),
            crash_fractions=(0.0, 0.2),
            modes=("raw", "reliable"),
        )
        cells = expand(spec)
        assert [c.kind for c in cells] == [CELL_KIND_FAULT] * 8
        grid = [(c.axes["mode"], c.axes["crash"], c.axes["loss"]) for c in cells]
        assert grid == [
            ("raw", 0.0, 0.0),
            ("raw", 0.0, 0.3),
            ("raw", 0.2, 0.0),
            ("raw", 0.2, 0.3),
            ("reliable", 0.0, 0.0),
            ("reliable", 0.0, 0.3),
            ("reliable", 0.2, 0.0),
            ("reliable", 0.2, 0.3),
        ]
        assert all(
            c.params["reliable"] == (c.axes["mode"] == "reliable") for c in cells
        )

    def test_cell_payload_is_position_free(self):
        """The same axis point has an identical payload in any grid shape."""
        wide = fault_spec(loss_rates=(0.0, 0.1, 0.3))
        narrow = fault_spec(loss_rates=(0.3,))
        wide_cell = next(c for c in expand(wide) if c.axes["loss"] == 0.3)
        narrow_cell = expand(narrow)[0]
        assert wide_cell.params == narrow_cell.params


class TestResultDocs:
    def test_error_point_round_trip(self):
        point = ErrorSweepPoint(
            level=0.2,
            stats=DetectionStats(
                n_truth=10, n_found=9, n_correct=8, n_mistaken=1, n_missing=2
            ),
            mistaken_hops={1: 1},
            missing_hops={1: 1, 2: 1},
        )
        doc = json.loads(json.dumps(error_point_doc(point)))
        assert error_point_from_doc(doc) == point

    def test_fault_point_round_trip(self):
        point = RobustnessPoint(
            loss_rate=0.1,
            crash_fraction=0.0,
            reliable=True,
            precision=0.5,
            recall=0.75,
            f1=0.6,
            n_found=6,
            n_truth=8,
            n_groups=1,
            messages_sent=100,
            messages_dropped=10,
            retransmissions=9,
            gave_up=1,
            rounds=20,
            quiesced=True,
        )
        doc = json.loads(json.dumps(fault_point_doc(point)))
        assert fault_point_from_doc(doc) == point


class TestRendering:
    def test_rejects_missing_or_misaligned_results(self):
        spec = error_spec()
        with pytest.raises(ValueError, match="0 results for 2 cells"):
            render_campaign_tables(spec, [])
        point = ErrorSweepPoint(
            level=0.0,
            stats=DetectionStats(
                n_truth=1, n_found=1, n_correct=1, n_mistaken=0, n_missing=0
            ),
            mistaken_hops={},
            missing_hops={},
        )
        with pytest.raises(ValueError, match="missing results for cells \\[1\\]"):
            render_campaign_tables(spec, [error_point_doc(point), None])

    def test_single_slice_has_no_headers_multi_slice_does(self):
        point = ErrorSweepPoint(
            level=0.0,
            stats=DetectionStats(
                n_truth=1, n_found=1, n_correct=1, n_mistaken=0, n_missing=0
            ),
            mistaken_hops={},
            missing_hops={},
        )
        doc = error_point_doc(point)
        single = render_campaign_tables(error_spec(levels=(0.0,)), [doc])
        assert "===" not in single
        assert single.endswith("\n") and not single.endswith("\n\n")
        multi = render_campaign_tables(
            error_spec(levels=(0.0,), seeds=(0, 1)), [doc, doc]
        )
        assert "=== scenario=sphere seed=0 variant=default ===" in multi
        assert "=== scenario=sphere seed=1 variant=default ===" in multi
