"""Unit tests for CDG construction and the CDM path-validity test."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.surface.cdg import build_cdg
from repro.surface.cdm import build_cdm, path_is_valid
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks


@pytest.fixture
def ring_setup():
    n = 24
    pts = [
        [np.cos(2 * np.pi * i / n) * 3.2, np.sin(2 * np.pi * i / n) * 3.2, 0.0]
        for i in range(n)
    ]
    graph = NetworkGraph(np.array(pts), radio_range=1.0)
    group = list(range(n))
    landmarks = elect_landmarks(graph, group, 4)
    cells = assign_voronoi_cells(graph, group, landmarks)
    return graph, group, landmarks, cells


class TestBuildCDG:
    def test_ring_cdg_is_a_cycle(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        cdg = build_cdg(graph, group, cells)
        # On a ring, landmark cells touch exactly their two ring neighbors.
        degree = {l: 0 for l in landmarks}
        for u, v in cdg:
            degree[u] += 1
            degree[v] += 1
        assert all(d == 2 for d in degree.values())
        assert len(cdg) == len(landmarks)

    def test_no_self_edges(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        for u, v in build_cdg(graph, group, cells):
            assert u != v

    def test_single_cell_yields_no_edges(self, ring_setup):
        graph, group, _, _ = ring_setup
        cells = {n: 0 for n in group}
        assert build_cdg(graph, group, cells) == set()


class TestPathValidity:
    def test_valid_two_cell_path(self):
        cells = {0: 0, 1: 0, 2: 5, 5: 5}
        assert path_is_valid([0, 1, 2, 5], cells, 0, 5)

    def test_rejects_third_cell(self):
        cells = {0: 0, 1: 9, 5: 5}
        assert not path_is_valid([0, 1, 5], cells, 0, 5)

    def test_rejects_interleaving(self):
        cells = {0: 0, 1: 5, 2: 0, 5: 5}
        assert not path_is_valid([0, 1, 2, 5], cells, 0, 5)

    def test_direct_landmark_to_landmark(self):
        cells = {0: 0, 5: 5}
        assert path_is_valid([0, 5], cells, 0, 5)


class TestBuildCDM:
    def test_ring_cdm_keeps_cycle(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        cdg = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg)
        # On a clean ring every CDG edge passes the validity test.
        assert cdm.edges == cdg
        assert cdm.rejected == set()

    def test_paths_recorded_for_accepted_edges(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        cdg = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg)
        for edge in cdm.edges:
            path = cdm.paths[edge]
            assert path[0] == edge[0] or path[0] == edge[1]
            assert set(edge) == {path[0], path[-1]}

    def test_on_path_marks_intermediates_only(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        cdg = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg)
        assert not (cdm.on_path & set(landmarks))

    def test_edges_union_rejected_covers_cdg(self, ring_setup):
        graph, group, landmarks, cells = ring_setup
        cdg = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg)
        assert cdm.edges | cdm.rejected == cdg
