"""Exhaustive small cases for the CDM path-validity predicate."""

from repro.surface.cdm import path_is_valid


class TestPathValidityMatrix:
    def test_all_i_then_all_j(self):
        cells = {0: 0, 1: 0, 2: 0, 3: 9, 4: 9, 9: 9}
        assert path_is_valid([0, 1, 2, 3, 4, 9], cells, 0, 9)

    def test_single_switch_back_rejected(self):
        cells = {0: 0, 1: 9, 2: 0, 9: 9}
        assert not path_is_valid([0, 1, 2, 9], cells, 0, 9)

    def test_double_interleave_rejected(self):
        cells = {0: 0, 1: 9, 2: 0, 3: 9, 9: 9}
        assert not path_is_valid([0, 1, 2, 3, 9], cells, 0, 9)

    def test_unassigned_node_rejected(self):
        cells = {0: 0, 9: 9}  # node 5 has no cell
        assert not path_is_valid([0, 5, 9], cells, 0, 9)

    def test_endpoints_only(self):
        cells = {0: 0, 9: 9}
        assert path_is_valid([0, 9], cells, 0, 9)

    def test_all_in_one_cell(self):
        """A path entirely in i's cell (j unreached via j-cells) is valid:
        no interleaving occurred and only the two cells appear."""
        cells = {0: 0, 1: 0, 2: 0, 9: 0}
        assert path_is_valid([0, 1, 2, 9], cells, 0, 9)

    def test_starts_in_j_cell(self):
        """A path whose first intermediate already belongs to j stays valid
        (prefix of i-cells may be empty)."""
        cells = {0: 0, 1: 9, 2: 9, 9: 9}
        assert path_is_valid([0, 1, 2, 9], cells, 0, 9)
