"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--scenario", "sphere", "--out", "x.json"]
        )
        assert args.scenario == "sphere"
        assert args.out == "x.json"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--scenario", "cube", "--out", "x"])

    def test_robustness_args(self):
        args = build_parser().parse_args(
            ["robustness", "--scenario", "sphere", "--loss", "0,0.2",
             "--crash", "0,0.1", "--mode", "reliable", "--max-retries", "3"]
        )
        assert args.loss == "0,0.2"
        assert args.crash == "0,0.1"
        assert args.mode == "reliable"
        assert args.max_retries == 3
        assert args.func.__name__ == "cmd_robustness"

    def test_robustness_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.loss == "0,0.1,0.3"
        assert args.crash == "0"
        assert args.mode == "both"

    def test_robustness_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness", "--mode", "lossy"])

    def test_trace_flag_default_off(self):
        for argv in (
            ["detect", "--network", "x.json"],
            ["robustness"],
            ["bench"],
        ):
            assert build_parser().parse_args(argv).trace is None

    def test_trace_subcommand_args(self):
        args = build_parser().parse_args(["trace", "t.jsonl", "--validate"])
        assert args.path == "t.jsonl"
        assert args.validate is True
        assert args.func.__name__ == "cmd_trace"


class TestEndToEnd:
    def test_generate_detect_surface(self, tmp_path):
        net_path = str(tmp_path / "net.json")
        result_path = str(tmp_path / "res.json")
        prefix = str(tmp_path / "mesh")

        assert (
            main(
                [
                    "generate",
                    "--scenario",
                    "sphere",
                    "--surface-nodes",
                    "250",
                    "--interior-nodes",
                    "450",
                    "--degree",
                    "26",
                    "--seed",
                    "4",
                    "--out",
                    net_path,
                ]
            )
            == 0
        )
        doc = json.loads((tmp_path / "net.json").read_text())
        assert len(doc["positions"]) == 700

        assert (
            main(["detect", "--network", net_path, "--out", result_path]) == 0
        )
        res = json.loads((tmp_path / "res.json").read_text())
        assert len(res["boundary"]) > 0

        assert (
            main(
                [
                    "surface",
                    "--network",
                    net_path,
                    "--result",
                    result_path,
                    "--out-prefix",
                    prefix,
                ]
            )
            == 0
        )
        assert (tmp_path / "mesh_0.obj").exists()

    def test_scenario_svg_render(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        svg_path = str(tmp_path / "scene.svg")
        assert (
            main(
                [
                    "scenario",
                    "--scenario",
                    "sphere",
                    "--surface-nodes",
                    "150",
                    "--interior-nodes",
                    "250",
                    "--degree",
                    "24",
                    "--svg",
                    svg_path,
                ]
            )
            == 0
        )
        text = (tmp_path / "scene.svg").read_text()
        assert text.startswith("<svg")
        assert "<circle" in text

    def test_analyze_reports_hole(self, capsys, tmp_path):
        net_path = str(tmp_path / "net.json")
        result_path = str(tmp_path / "res.json")
        assert (
            main(
                [
                    "generate",
                    "--scenario",
                    "one_hole",
                    "--surface-nodes",
                    "350",
                    "--interior-nodes",
                    "550",
                    "--degree",
                    "30",
                    "--seed",
                    "6",
                    "--out",
                    net_path,
                ]
            )
            == 0
        )
        assert main(["detect", "--network", net_path, "--out", result_path]) == 0
        capsys.readouterr()
        assert main(["analyze", "--network", net_path, "--result", result_path]) == 0
        out = capsys.readouterr().out
        assert "hole" in out or "no holes" in out

    def test_sweep_runs(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "sphere",
                    "--surface-nodes",
                    "150",
                    "--interior-nodes",
                    "250",
                    "--degree",
                    "24",
                    "--levels",
                    "0,0.3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 1(g)" in out
        assert "30%" in out

    def test_detect_trace_roundtrip(self, capsys, tmp_path):
        from repro.observability.export import load_trace

        net_path = str(tmp_path / "net.json")
        trace_path = str(tmp_path / "run.trace.jsonl")
        assert (
            main(
                [
                    "generate",
                    "--scenario",
                    "sphere",
                    "--surface-nodes",
                    "250",
                    "--interior-nodes",
                    "450",
                    "--degree",
                    "26",
                    "--seed",
                    "4",
                    "--out",
                    net_path,
                ]
            )
            == 0
        )
        assert (
            main(["detect", "--network", net_path, "--trace", trace_path]) == 0
        )
        assert f"wrote {trace_path}" in capsys.readouterr().out

        roots = load_trace(trace_path)  # raises if schema-invalid
        (cli_span,) = roots
        assert cli_span.name == "cli.detect"

        def names(span):
            yield span.name
            for child in span.children:
                yield from names(child)

        seen = set(names(cli_span))
        for stage in ("detect", "localization", "ubf", "ubf.shard", "iff",
                      "grouping", "surface.group", "surface.attempt"):
            assert stage in seen

        capsys.readouterr()
        assert main(["trace", trace_path, "--validate"]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["trace", trace_path]) == 0
        tree = capsys.readouterr().out
        assert tree.lstrip().startswith("cli.detect")
        assert "ubf.shard" in tree

    def test_trace_subcommand_rejects_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "trace", "format_version": 99}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "format_version" in out

    def test_robustness_runs_and_writes_report(self, capsys, tmp_path):
        report_path = str(tmp_path / "robustness.txt")
        assert (
            main(
                [
                    "robustness",
                    "--scenario",
                    "sphere",
                    "--surface-nodes",
                    "120",
                    "--interior-nodes",
                    "200",
                    "--degree",
                    "14",
                    "--theta",
                    "10",
                    "--loss",
                    "0,0.3",
                    "--mode",
                    "raw",
                    "--out",
                    report_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "raw protocols" in out
        assert "30%" in out
        with open(report_path, encoding="utf-8") as fh:
            assert "F1" in fh.read()
