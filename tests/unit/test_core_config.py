"""Unit tests for the pipeline configuration dataclasses."""

import pytest

from repro.core.config import DetectorConfig, IFFConfig, UBFConfig
from repro.network.measurement import NoError, UniformAbsoluteError


class TestUBFConfig:
    def test_default_radius(self):
        assert UBFConfig().radius == pytest.approx(1.001)

    def test_epsilon_controls_radius(self):
        assert UBFConfig(epsilon=0.25).radius == pytest.approx(1.25)

    def test_ball_radius_overrides_epsilon(self):
        assert UBFConfig(epsilon=0.5, ball_radius=2.0).radius == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UBFConfig(epsilon=-0.1)
        with pytest.raises(ValueError):
            UBFConfig(ball_radius=0.0)
        with pytest.raises(ValueError):
            UBFConfig(collection_hops=0)


class TestIFFConfig:
    def test_paper_defaults(self):
        config = IFFConfig()
        assert config.theta == 20  # icosahedron argument
        assert config.ttl == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            IFFConfig(theta=0)
        with pytest.raises(ValueError):
            IFFConfig(ttl=0)


class TestDetectorConfig:
    def test_auto_resolves_true_under_no_error(self):
        assert DetectorConfig().resolved_localization() == "true"

    def test_auto_resolves_mds_under_error(self):
        config = DetectorConfig(error_model=UniformAbsoluteError(0.1))
        assert config.resolved_localization() == "mds"

    def test_explicit_modes_pass_through(self):
        assert DetectorConfig(localization="mds").resolved_localization() == "mds"
        config = DetectorConfig(
            error_model=UniformAbsoluteError(0.1), localization="true"
        )
        assert config.resolved_localization() == "true"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DetectorConfig(localization="wrong")
