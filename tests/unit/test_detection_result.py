"""Unit tests for BoundaryDetectionResult and detect_boundary."""

import numpy as np
import pytest

from repro import BoundaryDetector, DetectorConfig, detect_boundary
from repro.core.pipeline import BoundaryDetectionResult


class TestResultHelpers:
    def test_boundary_mask(self):
        result = BoundaryDetectionResult(
            candidates={0, 2}, boundary={2}, groups=[[2]]
        )
        mask = result.boundary_mask(4)
        assert mask.tolist() == [False, False, True, False]

    def test_n_found(self):
        result = BoundaryDetectionResult(
            candidates={0, 1}, boundary={0, 1}, groups=[[0, 1]]
        )
        assert result.n_found == 2

    def test_boundary_mask_rejects_wrong_network_size(self):
        result = BoundaryDetectionResult(
            candidates={0, 7}, boundary={0, 7}, groups=[[0, 7]]
        )
        with pytest.raises(ValueError, match=r"outside \[0, 4\)"):
            result.boundary_mask(4)

    def test_boundary_mask_rejects_negative_id(self):
        result = BoundaryDetectionResult(
            candidates={-3}, boundary={-3}, groups=[[-3]]
        )
        with pytest.raises(ValueError, match="-3"):
            result.boundary_mask(4)

    def test_boundary_mask_empty_boundary(self):
        result = BoundaryDetectionResult(candidates=set(), boundary=set(), groups=[])
        assert result.boundary_mask(3).tolist() == [False, False, False]


class TestDetectBoundaryFunction:
    def test_matches_class_api(self, sphere_network):
        a = detect_boundary(sphere_network)
        b = BoundaryDetector().detect(sphere_network)
        assert a.boundary == b.boundary

    def test_explicit_config(self, sphere_network):
        result = detect_boundary(sphere_network, DetectorConfig())
        assert result.localization_used == "true"

    def test_default_rng_reproducible(self, sphere_network):
        from repro import UniformAbsoluteError

        config = DetectorConfig(error_model=UniformAbsoluteError(0.2))
        a = BoundaryDetector(config).detect(sphere_network)
        b = BoundaryDetector(config).detect(sphere_network)
        # No rng passed: both use the default seed-0 generator.
        assert a.boundary == b.boundary

    def test_ubf_outcomes_attached(self, sphere_detection, sphere_network):
        assert len(sphere_detection.ubf_outcomes) == sphere_network.n_nodes

    def test_pre_supplied_measurements_used(self, sphere_network):
        """Passing `measured` bypasses internal measurement generation."""
        import numpy as np

        from repro import DetectorConfig, UniformAbsoluteError
        from repro.network.measurement import measure_distances

        model = UniformAbsoluteError(0.2)
        measured = measure_distances(
            sphere_network.graph, model, np.random.default_rng(77)
        )
        config = DetectorConfig(error_model=model)
        a = BoundaryDetector(config).detect(sphere_network, measured=measured)
        b = BoundaryDetector(config).detect(sphere_network, measured=measured)
        # Identical measurements -> identical outcome, regardless of rng.
        assert a.boundary == b.boundary
        assert a.localization_used == "mds"
