"""Degenerate and adversarial inputs across the pipeline."""

import numpy as np
import pytest

from repro import (
    BoundaryDetector,
    DetectorConfig,
    IFFConfig,
    Network,
    NetworkGraph,
    UBFConfig,
)
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.core.ubf import run_ubf
from repro.surface.pipeline import SurfaceBuilder


def _network_from_points(points):
    graph = NetworkGraph(np.asarray(points, dtype=float), radio_range=1.0)
    return Network(
        graph=graph,
        truth_boundary=np.zeros(len(points), dtype=bool),
        scenario="degenerate",
    )


class TestTinyNetworks:
    def test_empty_network(self):
        net = _network_from_points(np.empty((0, 3)))
        result = BoundaryDetector().detect(net)
        assert result.boundary == set()
        assert result.groups == []

    def test_single_node(self):
        net = _network_from_points([[0.0, 0.0, 0.0]])
        result = BoundaryDetector(
            DetectorConfig(iff=IFFConfig(theta=1, ttl=1))
        ).detect(net)
        # An isolated node is (vacuously) boundary: no ball test possible.
        assert result.boundary == {0}

    def test_two_nodes(self):
        net = _network_from_points([[0, 0, 0], [0.5, 0, 0]])
        outcomes = run_ubf(net, UBFConfig())
        assert all(o.is_candidate for o in outcomes)

    def test_collinear_chain(self):
        """All-collinear geometry: every ball triple is degenerate."""
        net = _network_from_points([[0.4 * i, 0.0, 0.0] for i in range(6)])
        outcomes = run_ubf(net, UBFConfig())
        # Degenerate neighborhoods fall back to 'boundary' (they certainly
        # touch empty space).
        assert all(o.is_candidate for o in outcomes)

    def test_coincident_nodes(self):
        """Duplicate positions must not crash the solver."""
        net = _network_from_points(
            [[0, 0, 0], [0, 0, 0], [0.5, 0, 0], [0, 0.5, 0], [0, 0, 0.5]]
        )
        result = BoundaryDetector(
            DetectorConfig(iff=IFFConfig(theta=1, ttl=1))
        ).detect(net)
        assert isinstance(result.boundary, set)


class TestDegenerateSurfaceInputs:
    def test_empty_group_list(self, sphere_network):
        assert SurfaceBuilder().build(sphere_network.graph, []) == []

    def test_single_node_group(self, sphere_network):
        assert SurfaceBuilder().build(sphere_network.graph, [[0]]) == []

    def test_grouping_with_unknown_like_ids(self, sphere_network):
        """Grouping handles boundary sets that are plain Python ints."""
        groups = group_boundary_nodes(sphere_network.graph, [0, 1, 2])
        flat = sorted(n for g in groups for n in g)
        assert flat == [0, 1, 2]


class TestIFFDegenerate:
    def test_theta_equals_fragment_size_boundary(self):
        """theta == fragment size keeps the fragment (>= comparison)."""
        net = _network_from_points([[0.5 * i, 0, 0] for i in range(3)])
        survivors = run_iff(
            net.graph, {0, 1, 2}, IFFConfig(theta=3, ttl=3)
        )
        assert survivors == {0, 1, 2}

    def test_candidates_not_in_graph_range_rejected(self, sphere_network):
        with pytest.raises(IndexError):
            run_iff(sphere_network.graph, {10**6}, IFFConfig())
