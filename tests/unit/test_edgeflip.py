"""Unit tests for the edge-flip step (Step V)."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.surface.edgeflip import _apex_mst_edges, edge_flip
from repro.surface.mesh import TriangularMesh


def _line_graph(n=8):
    positions = np.array([[0.9 * i, 0.0, 0.0] for i in range(n)])
    return NetworkGraph(positions, radio_range=1.0)


class TestApexMST:
    def test_three_apexes_drop_longest(self):
        lengths = {(0, 1): 1, (1, 2): 2, (0, 2): 5}

        def hop(u, v):
            return lengths[(min(u, v), max(u, v))]

        chosen = _apex_mst_edges([0, 1, 2], hop)
        assert sorted(chosen) == [(0, 1), (1, 2)]

    def test_single_apex_no_edges(self):
        assert _apex_mst_edges([7], lambda u, v: 1) == []

    def test_two_apexes_one_edge(self):
        assert _apex_mst_edges([3, 5], lambda u, v: 1) == [(3, 5)]


class TestEdgeFlip:
    def _saturated_mesh(self):
        """Paper's Fig. 5: edge AB with three faces ABC, ABD, ABE.

        Vertices double as graph nodes 0..4 laid on a line so hop lengths
        are well-defined: A=0, B=1, C=2, D=3, E=4.
        """
        mesh = TriangularMesh(vertices=[0, 1, 2, 3, 4], group=[0, 1, 2, 3, 4])
        for apex in (2, 3, 4):
            mesh.add_edge(0, apex)
            mesh.add_edge(1, apex)
        mesh.add_edge(0, 1)
        return mesh

    def test_saturated_edge_removed(self):
        mesh = self._saturated_mesh()
        graph = _line_graph(5)
        edge_flip(mesh, graph)
        assert not mesh.has_edge(0, 1)

    def test_result_has_no_saturated_edges(self):
        mesh = self._saturated_mesh()
        edge_flip(mesh, _line_graph(5))
        assert mesh.edges_with_face_count(3) == []

    def test_replacement_edges_among_apexes(self):
        mesh = self._saturated_mesh()
        edge_flip(mesh, _line_graph(5))
        # Apexes on the line: 2,3,4 -> the two shortest are (2,3) and (3,4).
        assert mesh.has_edge(2, 3)
        assert mesh.has_edge(3, 4)
        assert not mesh.has_edge(2, 4)

    def test_clean_mesh_untouched(self):
        mesh = TriangularMesh(vertices=[0, 1, 2, 3])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v, hop_length=1)
        before = set(mesh.edges)
        edge_flip(mesh, _line_graph(4))
        assert mesh.edges == before

    def test_flip_terminates_on_detected_boundary(
        self, sphere_network, sphere_detection
    ):
        """Edge flip must terminate and clear saturation on real data."""
        from repro.surface.cdm import build_cdm
        from repro.surface.cdg import build_cdg
        from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks
        from repro.surface.triangulation import complete_triangulation

        graph = sphere_network.graph
        group = sphere_detection.groups[0]
        landmarks = elect_landmarks(graph, group, 4)
        cells = assign_voronoi_cells(graph, group, landmarks)
        cdg = build_cdg(graph, group, cells)
        cdm = build_cdm(graph, group, cells, cdg)
        edges, paths = complete_triangulation(
            graph, group, landmarks, cdm, candidate_radius=8
        )
        mesh = TriangularMesh(vertices=landmarks, group=list(group))
        for u, v in sorted(edges):
            mesh.add_edge(u, v, path=paths.get((u, v)))
        edge_flip(mesh, graph)
        assert mesh.edges_with_face_count(3) == []
