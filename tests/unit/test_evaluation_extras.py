"""Coverage for evaluation corners: seeding, bench artifacts, sweep driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.bench import (
    FORMAT_VERSION,
    artifact_path,
    check_regression,
    load_artifact,
    write_artifacts,
)
from repro.evaluation.robustness import run_scenario_robustness
from repro.evaluation.seeding import (
    cell_rng,
    cell_substream,
    error_cell_identity,
    fault_cell_identity,
)


class TestCellSubstreams:
    def test_stable_and_order_insensitive(self):
        a = cell_substream({"cell": "error", "level": 0.2})
        b = cell_substream({"level": 0.2, "cell": "error"})
        assert a == b
        assert cell_substream({"cell": "error", "level": 0.3}) != a

    def test_numpy_scalars_name_the_same_cell(self):
        plain = cell_substream({"level": 0.2, "n": 3})
        numpy_ = cell_substream({"level": np.float64(0.2), "n": np.int64(3)})
        assert plain == numpy_

    def test_bool_none_str_are_distinct_scalars(self):
        assert cell_substream({"flag": True}) != cell_substream({"flag": 1})
        assert cell_substream({"x": None}) != cell_substream({"x": "None"})

    def test_non_scalar_identity_rejected(self):
        with pytest.raises(TypeError, match="JSON scalars"):
            cell_substream({"levels": [0.1, 0.2]})

    def test_cell_rng_reproducible_and_identity_bound(self):
        identity = error_cell_identity(0.2)
        first = cell_rng(7, identity).random(4)
        again = cell_rng(7, identity).random(4)
        other = cell_rng(7, error_cell_identity(0.4)).random(4)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_fault_identity_excludes_mode(self):
        """Raw/reliable pairing: identity has only the fault axes."""
        assert set(fault_cell_identity(0.1, 0.2)) == {"cell", "crash", "loss"}


class TestBenchArtifacts:
    DOC = {
        "format_version": FORMAT_VERSION,
        "stage": "ubf",
        "scenario": "ubf_2k",
        "median_seconds": 1.0,
        "counters": {"balls_tested": 100},
    }

    def test_write_load_round_trip(self, tmp_path):
        paths = write_artifacts({"ubf": self.DOC}, tmp_path)
        assert paths == [artifact_path(tmp_path, "ubf")]
        assert load_artifact(paths[0]) == self.DOC

    def test_load_rejects_foreign_version(self, tmp_path):
        write_artifacts({"ubf": {**self.DOC, "format_version": 99}}, tmp_path)
        with pytest.raises(ValueError, match="artifact version"):
            load_artifact(artifact_path(tmp_path, "ubf"))

    def test_check_regression_clean_and_missing_baseline(self, tmp_path):
        write_artifacts({"ubf": self.DOC}, tmp_path)
        assert check_regression({"ubf": dict(self.DOC)}, tmp_path) == []
        issues = check_regression({"iff": dict(self.DOC)}, tmp_path)
        assert len(issues) == 1 and "no baseline" in issues[0]

    def test_check_regression_flags_drift_and_slowdown(self, tmp_path):
        write_artifacts({"ubf": self.DOC}, tmp_path)
        bad = {
            **self.DOC,
            "median_seconds": 10.0,
            "counters": {"balls_tested": 200},
        }
        issues = check_regression({"ubf": bad}, tmp_path, time_factor=3.0)
        assert any("drifted" in issue for issue in issues)
        assert any("regressed" in issue for issue in issues)


class TestScenarioRobustnessDriver:
    def test_generates_and_sweeps(self):
        from repro.core.config import DetectorConfig, IFFConfig
        from repro.network.generator import DeploymentConfig

        points = run_scenario_robustness(
            "sphere",
            DeploymentConfig(n_surface=40, n_interior=70, target_degree=10, seed=0),
            loss_rates=(0.0,),
            detector_config=DetectorConfig(iff=IFFConfig(theta=8, ttl=3)),
            seed=0,
        )
        assert len(points) == 1
        assert points[0].loss_rate == 0.0
        assert points[0].quiesced
