"""Unit tests for the event-monitoring subsystem."""

import numpy as np
import pytest

from repro.events.models import ShapeEvent, SphericalEvent, apply_event
from repro.events.monitor import EventMonitor, frontier_truth
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.shapes.solids import Sphere


@pytest.fixture
def grid_network():
    """A dense 9x9x5 grid slab network."""
    pts = [
        [0.6 * x, 0.6 * y, 0.6 * z]
        for x in range(9)
        for y in range(9)
        for z in range(5)
    ]
    positions = np.array(pts)
    graph = NetworkGraph(positions, radio_range=1.0)
    truth = np.zeros(len(pts), dtype=bool)
    return Network(graph=graph, truth_boundary=truth, scenario="grid")


class TestEventModels:
    def test_spherical_event_kills_inside(self, grid_network):
        event = SphericalEvent(center=(2.4, 2.4, 1.2), radius=0.7)
        outcome = apply_event(grid_network, event)
        assert outcome.n_destroyed > 0
        assert (
            outcome.survivor.n_nodes + outcome.n_destroyed == grid_network.n_nodes
        )
        # No survivor position remains inside the event.
        assert not event.contains(outcome.survivor.graph.positions).any()

    def test_id_mapping_consistent(self, grid_network):
        event = SphericalEvent(center=(2.4, 2.4, 1.2), radius=0.7)
        outcome = apply_event(grid_network, event)
        for new_id, old_id in enumerate(outcome.alive_original_ids):
            assert np.allclose(
                outcome.survivor.graph.positions[new_id],
                grid_network.graph.positions[old_id],
            )

    def test_shape_event(self, grid_network):
        event = ShapeEvent(Sphere(center=(2.4, 2.4, 1.2), radius=0.7))
        outcome = apply_event(grid_network, event)
        assert outcome.n_destroyed > 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SphericalEvent(center=(0, 0, 0), radius=0.0)

    def test_event_missing_everything(self, grid_network):
        event = SphericalEvent(center=(100, 100, 100), radius=0.5)
        outcome = apply_event(grid_network, event)
        assert outcome.n_destroyed == 0
        assert outcome.survivor.n_nodes == grid_network.n_nodes


class TestFrontierTruth:
    def test_spherical_frontier(self, grid_network):
        event = SphericalEvent(center=(2.4, 2.4, 1.2), radius=0.7)
        outcome = apply_event(grid_network, event)
        frontier = frontier_truth(outcome, event, margin=1.0)
        positions = outcome.survivor.graph.positions
        center = np.array([2.4, 2.4, 1.2])
        for node in frontier:
            assert np.linalg.norm(positions[node] - center) <= 0.7 + 1.0 + 1e-9


class TestEventMonitor:
    def test_event_hole_detected_on_sphere_network(self, sphere_network):
        # A central interior event ~3 radio ranges wide; the fixture
        # sphere's radius is only ~3.6 radio ranges, so an off-center
        # event would merge with the outer boundary group.
        event = SphericalEvent(center=(0.0, 0.0, 0.0), radius=1.6)
        report = EventMonitor().inspect(sphere_network, event)
        assert report.outcome.n_destroyed > 5
        assert report.event_detected
        assert report.precision > 0.8
        assert report.coverage > 0.0

    def test_no_event_no_groups(self, sphere_network):
        event = SphericalEvent(center=(1000.0, 0, 0), radius=0.5)
        report = EventMonitor().inspect(sphere_network, event)
        assert report.outcome.n_destroyed == 0
        assert not report.event_detected
