"""ShapeEvent scale-conversion and monitor fallback-frontier tests."""

import numpy as np
import pytest

from repro.events.models import ShapeEvent, apply_event
from repro.events.monitor import frontier_truth
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.shapes.solids import AxisAlignedBox, Sphere


@pytest.fixture
def line_network():
    positions = np.array([[float(i), 0.0, 0.0] for i in range(10)])
    graph = NetworkGraph(positions, radio_range=1.0)
    return Network(
        graph=graph, truth_boundary=np.zeros(10, bool), scenario="line"
    )


class TestShapeEventScaling:
    def test_scale_maps_model_units(self, line_network):
        # Model-space box [0, 1]^3 with scale 4 covers network x in [0, 4].
        event = ShapeEvent(
            AxisAlignedBox((0, -1, -1), (1, 1, 1)), scale=4.0
        )
        outcome = apply_event(line_network, event)
        assert outcome.destroyed_original_ids.tolist() == [0, 1, 2, 3, 4]

    def test_unit_scale(self, line_network):
        event = ShapeEvent(Sphere(center=(5.0, 0, 0), radius=1.1))
        outcome = apply_event(line_network, event)
        assert outcome.destroyed_original_ids.tolist() == [4, 5, 6]


class TestGenericFrontier:
    def test_fallback_frontier_probe(self, line_network):
        """Non-spherical events use the sampled-probe frontier fallback."""
        event = ShapeEvent(AxisAlignedBox((4.6, -1, -1), (5.4, 1, 1)))
        outcome = apply_event(line_network, event)
        frontier = frontier_truth(outcome, event, margin=1.0)
        survivor_positions = outcome.survivor.graph.positions
        # Frontier nodes are survivors near the box; the far ends are not.
        xs = sorted(float(survivor_positions[n][0]) for n in frontier)
        assert xs, "frontier should not be empty"
        assert min(xs) >= 3.0
        assert max(xs) <= 7.0
