"""Fast unit tests for the experiment drivers on miniature networks."""

import numpy as np
import pytest

from repro import DeploymentConfig, generate_network, sphere_scenario
from repro.evaluation.experiments import (
    PAPER_ERROR_LEVELS,
    run_error_sweep,
    run_mesh_error_sweep,
)


@pytest.fixture(scope="module")
def mini_network():
    """A deliberately tiny network so driver tests stay fast."""
    return generate_network(
        sphere_scenario(),
        DeploymentConfig(n_surface=150, n_interior=250, target_degree=24, seed=12),
        scenario="mini",
    )


class TestPaperLevels:
    def test_levels_cover_0_to_100(self):
        assert PAPER_ERROR_LEVELS[0] == 0.0
        assert PAPER_ERROR_LEVELS[-1] == 1.0
        assert len(PAPER_ERROR_LEVELS) == 11


class TestErrorSweepDriver:
    def test_identity_derived_measurements_per_level(self, mini_network):
        """Substreams derive from the cell's identity, not its position:
        the same level always draws the same measurements, different
        levels draw from distinct streams."""
        points = run_error_sweep(mini_network, (0.2, 0.2, 0.4), seed=5)
        assert points[0] == points[1]  # same identity => identical cell
        assert points[2].level == 0.4
        for p in points:
            assert p.stats.n_truth == int(mini_network.truth_boundary.sum())
            assert p.stats.n_found == p.stats.n_correct + p.stats.n_mistaken

    def test_custom_model_factory(self, mini_network):
        from repro.network.measurement import UniformRelativeError

        points = run_error_sweep(
            mini_network,
            (0.1,),
            model_factory=UniformRelativeError,
            seed=3,
        )
        assert len(points) == 1
        assert points[0].stats.n_found > 0

    def test_seed_reproducibility(self, mini_network):
        a = run_error_sweep(mini_network, (0.3,), seed=9)
        b = run_error_sweep(mini_network, (0.3,), seed=9)
        assert a[0].stats == b[0].stats
        assert a[0].mistaken_hops == b[0].mistaken_hops


class TestMeshErrorSweepDriver:
    def test_zero_level_uses_true_coordinates(self, mini_network):
        points = run_mesh_error_sweep(mini_network, levels=(0.0,), seed=1)
        assert points[0].detection.correct_pct > 0.9

    def test_structure(self, mini_network):
        points = run_mesh_error_sweep(mini_network, levels=(0.0, 0.2), seed=1)
        assert [p.level for p in points] == [0.0, 0.2]
        for p in points:
            for mesh in p.meshes:
                assert mesh.n_vertices >= 4
