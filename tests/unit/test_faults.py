"""Unit tests for the declarative fault models (repro.runtime.faults)."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.faults import (
    CrashSpec,
    DelaySpec,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    sample_crashes,
)
from repro.runtime.message import Message
from repro.runtime.protocols import TTLFloodProtocol
from repro.runtime.simulator import Simulator


@pytest.fixture
def grid_graph():
    pts = [[0.9 * x, 0.9 * y, 0.0] for x in range(6) for y in range(6)]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestPlanValidation:
    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)

    def test_duplicate_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=2.0)

    def test_link_loss_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(link_loss={(0, 1): 1.2})

    def test_gilbert_elliott_bounds(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_bad=-0.5)
        with pytest.raises(ValueError):
            GilbertElliott(loss_bad=1.5)

    def test_delay_spec_bounds(self):
        with pytest.raises(ValueError):
            DelaySpec(rate=1.5)
        with pytest.raises(ValueError):
            DelaySpec(rate=0.5, max_delay=0)

    def test_crash_spec_bounds(self):
        with pytest.raises(ValueError):
            CrashSpec(0, crash_round=-1)
        with pytest.raises(ValueError):
            CrashSpec(0, crash_round=3, recover_round=3)

    def test_crashes_normalized_to_tuple(self):
        plan = FaultPlan(crashes=[CrashSpec(1), CrashSpec(2)])
        assert isinstance(plan.crashes, tuple)

    def test_is_ideal(self):
        assert FaultPlan().is_ideal
        assert FaultPlan.ideal().is_ideal
        assert not FaultPlan(loss_rate=0.1).is_ideal
        assert not FaultPlan(crashes=(CrashSpec(0),)).is_ideal
        assert not FaultPlan(delay=DelaySpec(rate=0.1)).is_ideal

    def test_uniform_loss_shim(self):
        plan = FaultPlan.uniform_loss(0.25)
        assert plan.loss_rate == 0.25 and not plan.is_ideal


class TestCrashSpec:
    def test_down_interval(self):
        spec = CrashSpec(7, crash_round=2, recover_round=5)
        assert [spec.down_at(r) for r in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_permanent_crash(self):
        spec = CrashSpec(7, crash_round=3)
        assert not spec.down_at(2)
        assert spec.down_at(3) and spec.down_at(1000)


class TestSampleCrashes:
    def test_fraction_and_membership(self):
        nodes = range(100)
        crashes = sample_crashes(nodes, 0.3, np.random.default_rng(0))
        assert len(crashes) == 30
        assert all(0 <= c.node < 100 for c in crashes)
        assert len({c.node for c in crashes}) == 30

    def test_seeded_and_order_independent(self):
        a = sample_crashes(range(50), 0.2, np.random.default_rng(3))
        b = sample_crashes(reversed(range(50)), 0.2, np.random.default_rng(3))
        assert a == b

    def test_zero_fraction(self):
        assert sample_crashes(range(10), 0.0, np.random.default_rng(0)) == ()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            sample_crashes(range(10), 1.5, np.random.default_rng(0))


def _msgs(pairs, round_sent=0):
    return [Message(s, r, "x", round_sent) for s, r in pairs]


class TestInjectorMechanics:
    def test_total_loss_drops_everything(self):
        inj = FaultInjector(FaultPlan(loss_rate=1.0), np.random.default_rng(0))
        out = inj.deliveries(_msgs([(0, 1), (1, 2)]), 1)
        assert out == [] and inj.messages_dropped == 2

    def test_zero_loss_keeps_everything(self):
        inj = FaultInjector(FaultPlan(), np.random.default_rng(0))
        msgs = _msgs([(0, 1), (1, 2)])
        assert inj.deliveries(msgs, 1) == msgs
        assert inj.messages_dropped == 0

    def test_asymmetric_link_loss(self):
        """One direction always drops, the reverse is clean."""
        plan = FaultPlan(link_loss={(0, 1): 1.0, (1, 0): 0.0})
        inj = FaultInjector(plan, np.random.default_rng(0))
        out = inj.deliveries(_msgs([(0, 1), (1, 0)]), 1)
        assert [(m.sender, m.recipient) for m in out] == [(1, 0)]
        assert inj.messages_dropped == 1

    def test_link_override_beats_uniform_loss(self):
        plan = FaultPlan(loss_rate=1.0, link_loss={(0, 1): 0.0})
        inj = FaultInjector(plan, np.random.default_rng(0))
        out = inj.deliveries(_msgs([(0, 1), (2, 3)]), 1)
        assert [(m.sender, m.recipient) for m in out] == [(0, 1)]

    def test_duplication_doubles_delivery(self):
        inj = FaultInjector(
            FaultPlan(duplicate_rate=1.0), np.random.default_rng(0)
        )
        out = inj.deliveries(_msgs([(0, 1)]), 1)
        assert len(out) == 2 and inj.messages_duplicated == 1

    def test_delay_buffers_until_due_round(self):
        plan = FaultPlan(delay=DelaySpec(rate=1.0, max_delay=1))
        inj = FaultInjector(plan, np.random.default_rng(0))
        assert inj.deliveries(_msgs([(0, 1)]), 1) == []
        assert inj.has_pending()
        out = inj.deliveries([], 2)
        assert len(out) == 1 and not inj.has_pending()
        assert inj.messages_delayed == 1

    def test_crashed_recipient_drops_message(self):
        plan = FaultPlan(crashes=(CrashSpec(1, crash_round=0),))
        inj = FaultInjector(plan, np.random.default_rng(0))
        assert inj.deliveries(_msgs([(0, 1)]), 1) == []
        assert inj.messages_dropped == 1

    def test_recovered_node_receives_again(self):
        plan = FaultPlan(crashes=(CrashSpec(1, crash_round=0, recover_round=3),))
        inj = FaultInjector(plan, np.random.default_rng(0))
        assert inj.deliveries(_msgs([(0, 1)]), 2) == []
        assert len(inj.deliveries(_msgs([(0, 1)]), 3)) == 1

    def test_burst_loss_bad_state_drops(self):
        """A channel pinned in the bad state with loss 1.0 drops all."""
        burst = GilbertElliott(p_bad=1.0, p_recover=0.0, loss_good=0.0, loss_bad=1.0)
        inj = FaultInjector(FaultPlan(burst=burst), np.random.default_rng(0))
        out = inj.deliveries(_msgs([(0, 1)]), 1)
        assert out == [] and inj.messages_dropped == 1

    def test_burst_good_state_clean(self):
        burst = GilbertElliott(p_bad=0.0, p_recover=1.0, loss_good=0.0, loss_bad=1.0)
        inj = FaultInjector(FaultPlan(burst=burst), np.random.default_rng(0))
        assert len(inj.deliveries(_msgs([(0, 1)]), 5)) == 1


class TestEndToEndDeterminism:
    def test_identical_plan_and_seed_identical_result(self, grid_graph):
        """Acceptance: plan + seed fully determine the SimulationResult."""
        plan = FaultPlan(
            loss_rate=0.1,
            link_loss={(0, 1): 0.9, (1, 0): 0.0},
            burst=GilbertElliott(),
            duplicate_rate=0.05,
            delay=DelaySpec(rate=0.1, max_delay=3),
            crashes=(CrashSpec(7, 2, 5), CrashSpec(12, 0)),
        )
        runs = [
            Simulator(
                grid_graph, fault_plan=plan, rng=np.random.default_rng(42)
            ).run(TTLFloodProtocol(3))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].messages_dropped > 0

    def test_different_seed_different_schedule(self, grid_graph):
        plan = FaultPlan(loss_rate=0.3)
        a = Simulator(grid_graph, fault_plan=plan, rng=np.random.default_rng(0)).run(
            TTLFloodProtocol(3)
        )
        b = Simulator(grid_graph, fault_plan=plan, rng=np.random.default_rng(1)).run(
            TTLFloodProtocol(3)
        )
        assert a != b  # astronomically unlikely to coincide
