"""Unit tests for network deployment."""

import numpy as np
import pytest

from repro.network.generator import (
    DeploymentConfig,
    _radio_range_for_degree,
    generate_network,
)
from repro.shapes.solids import Sphere


class TestGenerateNetwork:
    def setup_method(self):
        self.config = DeploymentConfig(
            n_surface=200, n_interior=400, target_degree=22, seed=0
        )

    def test_node_counts_and_truth_flags(self):
        net = generate_network(Sphere(radius=1.0), self.config, scenario="s")
        assert net.n_nodes == 600
        assert net.truth_boundary.sum() == 200
        # Surface nodes come first.
        assert net.truth_boundary[:200].all()
        assert not net.truth_boundary[200:].any()

    def test_radio_range_normalized(self):
        net = generate_network(Sphere(radius=1.0), self.config)
        assert net.graph.radio_range == 1.0

    def test_truth_nodes_on_scaled_surface(self):
        net = generate_network(Sphere(radius=1.0), self.config)
        truth_positions = net.graph.positions[net.truth_boundary]
        radii = np.linalg.norm(truth_positions, axis=1)
        assert np.allclose(radii, net.scale, rtol=1e-6)

    def test_deterministic_given_seed(self):
        a = generate_network(Sphere(radius=1.0), self.config)
        b = generate_network(Sphere(radius=1.0), self.config)
        assert np.allclose(a.graph.positions, b.graph.positions)

    def test_different_seeds_differ(self):
        other = DeploymentConfig(
            n_surface=200, n_interior=400, target_degree=22, seed=1
        )
        a = generate_network(Sphere(radius=1.0), self.config)
        b = generate_network(Sphere(radius=1.0), other)
        assert not np.allclose(a.graph.positions, b.graph.positions)

    def test_connected_output(self):
        net = generate_network(Sphere(radius=1.0), self.config)
        assert net.graph.is_connected()

    def test_target_degree_roughly_met(self):
        net = generate_network(Sphere(radius=1.0), self.config)
        # Boundary truncation pulls the mean below target; allow slack.
        assert 10 <= net.graph.degrees().mean() <= 30

    def test_giant_component_fallback(self):
        """A hopeless density still yields a (restricted) network."""
        sparse = DeploymentConfig(
            n_surface=30,
            n_interior=30,
            target_degree=2.0,
            seed=0,
            connectivity_retries=0,
            keep_giant_component=True,
        )
        net = generate_network(Sphere(radius=1.0), sparse)
        assert net.graph.is_connected()
        assert net.scenario.endswith("+giant")

    def test_disconnected_raises_without_fallback(self):
        sparse = DeploymentConfig(
            n_surface=30,
            n_interior=30,
            target_degree=1.2,
            seed=0,
            connectivity_retries=0,
            keep_giant_component=False,
        )
        with pytest.raises(RuntimeError):
            generate_network(Sphere(radius=1.0), sparse)

    def test_summary_mentions_scenario(self):
        net = generate_network(Sphere(radius=1.0), self.config, scenario="demo")
        assert "demo" in net.summary()


class TestRadioRangeForDegree:
    def test_uses_exact_volume(self, rng):
        shape = Sphere(radius=1.0)
        r = _radio_range_for_degree(shape, 1000, 20.0, rng)
        density = 1000 / shape.volume
        expected = (3 * 20.0 / (4 * np.pi * density)) ** (1 / 3)
        assert r == pytest.approx(expected)

    def test_monotone_in_degree(self, rng):
        shape = Sphere(radius=1.0)
        r1 = _radio_range_for_degree(shape, 1000, 10.0, rng)
        r2 = _radio_range_for_degree(shape, 1000, 30.0, rng)
        assert r2 > r1
