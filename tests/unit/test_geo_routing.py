"""Unit tests for boundary-aware geographic routing."""

import numpy as np
import pytest

from repro.applications.geo_routing import GeoRouter, delivery_rate
from repro.network.graph import NetworkGraph


@pytest.fixture
def c_shape_graph():
    """A planar C-shaped corridor: greedy stalls at the concavity.

    Nodes trace a dense 'C' in the plane (opening to the right).  Routing
    from the top tip to the bottom tip pulls greedy into the mouth of the
    C, where it stalls; walking the boundary (here: all nodes) recovers.
    """
    pts = []
    # Arc from 80 degrees to 280 degrees, radius 3, spacing ~0.5.
    for deg in range(80, 281, 8):
        t = np.radians(deg)
        pts.append([3 * np.cos(t), 3 * np.sin(t), 0.0])
        pts.append([2.4 * np.cos(t), 2.4 * np.sin(t), 0.0])
    positions = np.array(pts)
    graph = NetworkGraph(positions, radio_range=1.0)
    return graph


class TestGreedyOnly:
    def test_direct_line_delivers(self):
        positions = np.array([[0.8 * i, 0.0, 0.0] for i in range(8)])
        graph = NetworkGraph(positions, radio_range=1.0)
        router = GeoRouter(graph, recovery="none")
        result = router.route(0, 7)
        assert result.delivered
        assert result.path == list(range(8))
        assert result.recovery_hops == 0

    def test_stall_without_recovery_fails(self, c_shape_graph):
        graph = c_shape_graph
        # Top tip (first node) to bottom tip (last arc node).
        router = GeoRouter(graph, recovery="none")
        result = router.route(0, graph.n_nodes - 2)
        # The C-mouth stalls pure greedy.
        if not result.delivered:
            assert result.path == []
            assert result.stalls >= 1
        else:
            pytest.skip("geometry did not produce a stall; layout too permissive")


class TestBoundaryRecovery:
    def test_recovers_around_concavity(self, c_shape_graph):
        graph = c_shape_graph
        boundary = set(range(graph.n_nodes))  # every corridor node is boundary
        router = GeoRouter(graph, boundary, recovery="boundary")
        result = router.route(0, graph.n_nodes - 2)
        assert result.delivered
        # Route is a real walk.
        for u, v in zip(result.path, result.path[1:]):
            assert graph.has_edge(u, v)

    def test_requires_boundary_set(self):
        graph = NetworkGraph(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            GeoRouter(graph, None, recovery="boundary")

    def test_invalid_mode(self):
        graph = NetworkGraph(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            GeoRouter(graph, set(), recovery="teleport")


class TestOnRealNetwork:
    def test_boundary_recovery_beats_plain_greedy(
        self, one_hole_network, one_hole_detection
    ):
        """Across the hole, recovery delivers at least as often as greedy."""
        graph = one_hole_network.graph
        boundary = one_hole_detection.boundary
        rng = np.random.default_rng(7)
        nodes = rng.choice(graph.n_nodes, size=(15, 2), replace=True)
        pairs = [(int(a), int(b)) for a, b in nodes if a != b]
        plain = GeoRouter(graph, recovery="none")
        recovered = GeoRouter(graph, boundary, recovery="boundary")
        rate_plain = delivery_rate(plain, pairs)
        rate_recovered = delivery_rate(recovered, pairs)
        assert rate_recovered >= rate_plain

    def test_delivery_rate_empty_pairs(self, one_hole_network):
        router = GeoRouter(one_hole_network.graph, recovery="none")
        assert delivery_rate(router, []) == 0.0
