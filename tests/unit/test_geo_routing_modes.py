"""Additional GeoRouter behaviors: hop accounting and budgets."""

import numpy as np
import pytest

from repro.applications.geo_routing import GeoRouter
from repro.network.graph import NetworkGraph


@pytest.fixture
def straight_line():
    positions = np.array([[0.8 * i, 0.0, 0.0] for i in range(10)])
    return NetworkGraph(positions, radio_range=1.0)


class TestHopAccounting:
    def test_greedy_hops_counted(self, straight_line):
        router = GeoRouter(straight_line, recovery="none")
        result = router.route(0, 9)
        assert result.delivered
        assert result.greedy_hops == 9
        assert result.recovery_hops == 0
        assert result.stalls == 0

    def test_self_route(self, straight_line):
        router = GeoRouter(straight_line, recovery="none")
        result = router.route(4, 4)
        assert result.delivered
        assert result.path == [4]
        assert result.greedy_hops == 0


class TestHopBudget:
    def test_max_hops_respected(self, straight_line):
        router = GeoRouter(straight_line, recovery="none")
        result = router.route(0, 9, max_hops=3)
        assert not result.delivered
        assert result.path == []

    def test_budget_exactly_sufficient(self, straight_line):
        router = GeoRouter(straight_line, recovery="none")
        result = router.route(0, 9, max_hops=9)
        assert result.delivered


class TestRecoveryBookkeeping:
    def test_recovery_only_on_stall(self, straight_line):
        """On a straight line greedy never stalls, so no recovery hops."""
        router = GeoRouter(
            straight_line, set(range(10)), recovery="boundary"
        )
        result = router.route(0, 9)
        assert result.delivered
        assert result.recovery_hops == 0
        assert result.greedy_success_ratio == 1.0
