"""Unit tests for repro.geometry.primitives."""

import numpy as np
import pytest

from repro.geometry.primitives import (
    as_point,
    as_points,
    circumcenter,
    circumradius,
    norm,
    normalize,
    pairwise_distances,
    point_in_ball,
    triangle_area,
)


class TestAsPoint:
    def test_accepts_list(self):
        assert np.allclose(as_point([1, 2, 3]), [1.0, 2.0, 3.0])

    def test_accepts_row_array(self):
        assert as_point(np.array([[1.0, 2.0, 3.0]])).shape == (3,)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            as_point([1, 2])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_point(np.zeros((2, 3)))


class TestAsPoints:
    def test_single_point_promoted(self):
        assert as_points([1, 2, 3]).shape == (1, 3)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((4, 2)))


class TestNorm:
    def test_unit_axes(self):
        assert norm([1, 0, 0]) == 1.0
        assert norm([0, 0, -1]) == 1.0

    def test_pythagoras(self):
        assert norm([3, 4, 0]) == pytest.approx(5.0)


class TestNormalize:
    def test_result_is_unit(self):
        v = normalize([3.0, 4.0, 12.0])
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_preserves_direction(self):
        v = normalize([0.0, 2.0, 0.0])
        assert np.allclose(v, [0, 1, 0])

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0, 0.0])


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 2, 0]], dtype=float)
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_known_values(self):
        pts = np.array([[0, 0, 0], [3, 4, 0]], dtype=float)
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)


class TestTriangleArea:
    def test_right_triangle(self):
        assert triangle_area([0, 0, 0], [2, 0, 0], [0, 2, 0]) == pytest.approx(2.0)

    def test_degenerate_is_zero(self):
        assert triangle_area([0, 0, 0], [1, 0, 0], [2, 0, 0]) == pytest.approx(0.0)

    def test_invariant_under_translation(self):
        shift = np.array([5.0, -2.0, 7.0])
        a = triangle_area([0, 0, 0], [1, 0, 0], [0, 1, 1])
        b = triangle_area(shift, shift + [1, 0, 0], shift + [0, 1, 1])
        assert a == pytest.approx(b)


class TestCircumcenter:
    def test_right_triangle_in_plane(self):
        c = circumcenter([0, 0, 0], [2, 0, 0], [0, 2, 0])
        assert np.allclose(c, [1, 1, 0])

    def test_equidistance_property(self, rng):
        for _ in range(20):
            pts = rng.normal(size=(3, 3))
            try:
                c = circumcenter(*pts)
            except ValueError:
                continue
            dists = [np.linalg.norm(c - p) for p in pts]
            assert dists[0] == pytest.approx(dists[1], rel=1e-9)
            assert dists[0] == pytest.approx(dists[2], rel=1e-9)

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            circumcenter([0, 0, 0], [1, 1, 1], [2, 2, 2])

    def test_off_plane_triangle(self):
        c = circumcenter([1, 0, 0], [0, 1, 0], [0, 0, 1])
        # By symmetry the circumcenter is on the diagonal.
        assert c[0] == pytest.approx(c[1])
        assert c[1] == pytest.approx(c[2])


class TestCircumradius:
    def test_equilateral(self):
        # Side s equilateral triangle has circumradius s / sqrt(3).
        s = 2.0
        p1 = [0, 0, 0]
        p2 = [s, 0, 0]
        p3 = [s / 2, s * np.sqrt(3) / 2, 0]
        assert circumradius(p1, p2, p3) == pytest.approx(s / np.sqrt(3))


class TestPointInBall:
    def test_inside(self):
        assert point_in_ball([0.1, 0, 0], [0, 0, 0], 1.0)

    def test_on_surface_not_inside(self):
        assert not point_in_ball([1.0, 0, 0], [0, 0, 0], 1.0)

    def test_outside(self):
        assert not point_in_ball([2.0, 0, 0], [0, 0, 0], 1.0)
