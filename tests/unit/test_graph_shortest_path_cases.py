"""Deterministic shortest-path tie-breaking: exhaustive small cases."""

import numpy as np

from repro.network.graph import NetworkGraph


def _graph_from_edges(n, edges):
    """Build a NetworkGraph with explicit adjacency (positions unused)."""
    adjacency = [[] for _ in range(n)]
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    return NetworkGraph(np.zeros((n, 3)), adjacency=adjacency)


class TestTieBreaking:
    def test_two_parallel_paths_lowest_wins(self):
        # 0 -> {1, 2} -> 3: path through 1 must win.
        g = _graph_from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert g.shortest_path(0, 3) == [0, 1, 3]

    def test_three_parallel_paths(self):
        g = _graph_from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
        assert g.shortest_path(0, 4) == [0, 1, 4]

    def test_longer_path_with_lower_ids_loses(self):
        # Short path via high-ID node 5 beats long path via low IDs.
        g = _graph_from_edges(
            6, [(0, 5), (5, 4), (0, 1), (1, 2), (2, 3), (3, 4)]
        )
        assert g.shortest_path(0, 4) == [0, 5, 4]

    def test_symmetric_paths_reverse_consistency(self):
        """Forward and reverse paths have equal length (not necessarily the
        same nodes -- tie-breaking is direction-dependent by design)."""
        g = _graph_from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        forward = g.shortest_path(0, 3)
        backward = g.shortest_path(3, 0)
        assert len(forward) == len(backward)


class TestWithinSemantics:
    def test_within_includes_endpoints(self):
        g = _graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.shortest_path(0, 3, within={0, 1, 2, 3}) == [0, 1, 2, 3]

    def test_within_missing_endpoint(self):
        g = _graph_from_edges(3, [(0, 1), (1, 2)])
        assert g.shortest_path(0, 2, within={0, 1}) is None
