"""Unit tests for boundary grouping."""

import numpy as np

from repro.core.grouping import group_boundary_nodes
from repro.network.graph import NetworkGraph


def _two_ring_graph():
    """Two small disjoint rings of boundary nodes plus connecting interior."""
    ring1 = [[np.cos(t), np.sin(t), 0.0] for t in np.linspace(0, 2 * np.pi, 8, endpoint=False)]
    ring2 = [[np.cos(t) + 5.0, np.sin(t), 0.0] for t in np.linspace(0, 2 * np.pi, 6, endpoint=False)]
    bridge = [[1.5 + 0.5 * i, 0.0, 0.0] for i in range(6)]
    positions = np.array(ring1 + ring2 + bridge)
    return NetworkGraph(positions, radio_range=1.0), set(range(8)), set(range(8, 14))


class TestGrouping:
    def test_two_groups_found(self):
        graph, ring1, ring2 = _two_ring_graph()
        groups = group_boundary_nodes(graph, ring1 | ring2)
        assert len(groups) == 2
        assert set(groups[0]) == ring1  # larger group first
        assert set(groups[1]) == ring2

    def test_groups_sorted_by_size_then_min_id(self):
        graph, ring1, ring2 = _two_ring_graph()
        groups = group_boundary_nodes(graph, ring1 | ring2)
        assert len(groups[0]) >= len(groups[1])

    def test_min_group_size_filter(self):
        graph, ring1, ring2 = _two_ring_graph()
        groups = group_boundary_nodes(graph, ring1 | ring2, min_group_size=7)
        assert len(groups) == 1
        assert set(groups[0]) == ring1

    def test_empty_boundary(self):
        graph, _, _ = _two_ring_graph()
        assert group_boundary_nodes(graph, set()) == []

    def test_one_hole_network_groups(self, one_hole_network, one_hole_detection):
        """The one-hole scenario must yield exactly two boundary groups."""
        groups = one_hole_detection.groups
        assert len(groups) == 2
        assert len(groups[0]) > len(groups[1])

    def test_groups_partition_boundary(self, sphere_detection):
        all_grouped = [n for g in sphere_detection.groups for n in g]
        assert sorted(all_grouped) == sorted(sphere_detection.boundary)
