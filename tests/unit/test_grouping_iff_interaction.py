"""Interactions between IFF and grouping on crafted topologies."""

import numpy as np

from repro.core.config import IFFConfig
from repro.core.grouping import group_boundary_nodes
from repro.core.iff import run_iff
from repro.network.graph import NetworkGraph


def _two_shells():
    """Two concentric-ish shells joined by interior filler nodes.

    Outer shell: 40 nodes at radius 3.2; inner shell: 20 nodes at radius
    1.4; filler between them keeps the graph connected without joining
    the shells directly.
    """
    rng = np.random.default_rng(8)
    outer_dirs = rng.normal(size=(40, 3))
    outer_dirs /= np.linalg.norm(outer_dirs, axis=1, keepdims=True)
    inner_dirs = rng.normal(size=(20, 3))
    inner_dirs /= np.linalg.norm(inner_dirs, axis=1, keepdims=True)
    filler = rng.normal(size=(60, 3))
    filler /= np.linalg.norm(filler, axis=1, keepdims=True)
    filler *= rng.uniform(2.0, 2.7, size=(60, 1))
    positions = np.vstack([outer_dirs * 3.2, inner_dirs * 1.4, filler])
    graph = NetworkGraph(positions, radio_range=1.0)
    outer = set(range(40))
    inner = set(range(40, 60))
    return graph, outer, inner


class TestShellSeparation:
    def test_shells_form_separate_groups(self):
        graph, outer, inner = _two_shells()
        groups = group_boundary_nodes(graph, outer | inner)
        # The shells are >1 radio range apart: no group mixes them.
        for group in groups:
            members = set(group)
            assert not (members & outer and members & inner)

    def test_iff_keeps_both_shells_with_low_theta(self):
        graph, outer, inner = _two_shells()
        survivors = run_iff(graph, outer | inner, IFFConfig(theta=5, ttl=3))
        assert survivors & outer
        assert survivors & inner

    def test_iff_theta_can_select_shells_by_size(self):
        """A theta between the shells' 3-hop densities drops the sparser one."""
        graph, outer, inner = _two_shells()
        sizes_all = run_iff(graph, outer | inner, IFFConfig(theta=1, ttl=3))
        assert sizes_all == outer | inner
        # Push theta to the inner shell's full size + 1: outer (40 nodes,
        # denser) can still clear it where inner cannot.
        survivors = run_iff(graph, outer | inner, IFFConfig(theta=21, ttl=5))
        assert not (survivors & inner)
