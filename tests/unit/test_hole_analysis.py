"""Unit tests for hole analysis."""

import numpy as np
import pytest

from repro.applications.hole_analysis import analyze_hole, rank_holes
from repro.network.graph import NetworkGraph


@pytest.fixture
def shell_graph():
    """60 nodes on a sphere of radius 2 centered at (5, 0, 0)."""
    rng = np.random.default_rng(4)
    dirs = rng.normal(size=(60, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    positions = np.array([5.0, 0.0, 0.0]) + 2.0 * dirs
    return NetworkGraph(positions, radio_range=1.0)


class TestAnalyzeHole:
    def test_centroid_near_true_center(self, shell_graph):
        report = analyze_hole(shell_graph, range(60))
        assert np.linalg.norm(report.centroid - [5, 0, 0]) < 0.5

    def test_radius_estimates(self, shell_graph):
        report = analyze_hole(shell_graph, range(60))
        assert report.mean_radius == pytest.approx(2.0, rel=0.15)
        assert report.max_radius >= report.mean_radius

    def test_volume_close_to_ball(self, shell_graph):
        report = analyze_hole(shell_graph, range(60))
        true_volume = 4 / 3 * np.pi * 8
        assert report.volume_estimate == pytest.approx(true_volume, rel=0.4)

    def test_tiny_group_no_volume(self, shell_graph):
        report = analyze_hole(shell_graph, [0, 1, 2])
        assert report.volume_estimate is None

    def test_empty_group_raises(self, shell_graph):
        with pytest.raises(ValueError):
            analyze_hole(shell_graph, [])

    def test_as_row(self, shell_graph):
        assert "boundary nodes" in analyze_hole(shell_graph, range(60)).as_row()


class TestRankHoles:
    def test_skips_outer_and_sorts_by_volume(self, shell_graph):
        groups = [list(range(60)), [0, 1, 2, 3, 4], list(range(10, 40))]
        reports = rank_holes(shell_graph, groups)
        assert len(reports) == 2
        vols = [r.volume_estimate or 0.0 for r in reports]
        assert vols == sorted(vols, reverse=True)

    def test_single_group_no_holes(self, shell_graph):
        assert rank_holes(shell_graph, [list(range(60))]) == []

    def test_real_hole_detection(self, one_hole_network, one_hole_detection):
        """The detected hole's radius matches the scenario's hole size."""
        reports = rank_holes(one_hole_network.graph, one_hole_detection.groups)
        assert len(reports) == 1
        # Scenario hole radius is 0.38 model units; convert via scale.
        expected = 0.38 * one_hole_network.scale
        assert reports[0].mean_radius == pytest.approx(expected, rel=0.35)
