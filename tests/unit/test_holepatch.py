"""Unit tests for the hole-patching pass."""

import numpy as np

from repro.network.graph import NetworkGraph
from repro.surface.holepatch import _find_open_cycle, patch_holes
from repro.surface.mesh import TriangularMesh


def _octahedron_nodes_graph():
    """Six nodes placed so all hop lengths are defined (complete-ish graph)."""
    pts = np.array(
        [
            [0.5, 0, 0],
            [-0.5, 0, 0],
            [0, 0.5, 0],
            [0, -0.5, 0],
            [0, 0, 0.5],
            [0, 0, -0.5],
        ]
    )
    return NetworkGraph(pts, radio_range=1.5)


class TestFindOpenCycle:
    def test_square_cycle_found(self):
        cycle = _find_open_cycle([(0, 1), (1, 2), (2, 3), (0, 3)])
        assert cycle is not None
        assert sorted(cycle) == [0, 1, 2, 3]

    def test_path_has_no_cycle(self):
        assert _find_open_cycle([(0, 1), (1, 2), (2, 3)]) is None

    def test_empty(self):
        assert _find_open_cycle([]) is None


class TestPatchHoles:
    def test_square_hole_gets_diagonal(self):
        """An open quad ring plus surrounding closed faces gets a diagonal.

        Build an octahedron missing the equatorial diagonals: vertices
        0..5, top apex 4 and bottom apex 5 connected to equator 0,2,1,3.
        The equatorial ring edges each have 2 faces already; remove apex 5
        edges to leave the lower faces open.
        """
        graph = _octahedron_nodes_graph()
        mesh = TriangularMesh(vertices=[0, 1, 2, 3, 4], group=[0, 1, 2, 3, 4, 5])
        # Equator ring 0-2-1-3 plus apex 4 connected to all.
        ring = [(0, 2), (2, 1), (1, 3), (3, 0)]
        for u, v in ring:
            mesh.add_edge(u, v, hop_length=1)
        for e in range(4):
            mesh.add_edge(e, 4, hop_length=1)
        # Each ring edge has one face (with apex 4); the ring is open below.
        counts = mesh.edge_face_counts()
        assert all(counts[e] == 1 for e in ((0, 2), (1, 2), (1, 3), (0, 3)))
        ok = patch_holes(mesh, graph)
        assert ok
        # One diagonal of the quad 0-2-1-3 must now exist.
        assert mesh.has_edge(0, 1) or mesh.has_edge(2, 3)
        assert all(c >= 2 for c in mesh.edge_face_counts().values())

    def test_already_closed_mesh_untouched(self):
        graph = _octahedron_nodes_graph()
        mesh = TriangularMesh(vertices=[0, 1, 2, 3], group=[0, 1, 2, 3])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v, hop_length=1)
        before = set(mesh.edges)
        assert patch_holes(mesh, graph)
        assert mesh.edges == before

    def test_open_path_reports_failure(self):
        graph = _octahedron_nodes_graph()
        mesh = TriangularMesh(vertices=[0, 1, 2], group=[0, 1, 2])
        mesh.add_edge(0, 1, hop_length=1)
        mesh.add_edge(1, 2, hop_length=1)
        assert not patch_holes(mesh, graph)
