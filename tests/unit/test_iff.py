"""Unit tests for Isolated Fragment Filtering."""

import numpy as np
import pytest

from repro.core.config import IFFConfig
from repro.core.iff import iff_fragment_sizes, run_iff
from repro.network.graph import NetworkGraph


@pytest.fixture
def line_of_candidates():
    """A 30-node chain; candidates form one long run and one isolated pair."""
    positions = np.array([[0.8 * i, 0.0, 0.0] for i in range(30)])
    graph = NetworkGraph(positions, radio_range=1.0)
    big_fragment = set(range(0, 12))
    small_fragment = {20, 21}
    return graph, big_fragment | small_fragment, big_fragment, small_fragment


class TestFragmentSizes:
    def test_counts_include_self(self, line_of_candidates):
        graph, candidates, _, _ = line_of_candidates
        sizes = iff_fragment_sizes(graph, candidates, ttl=3)
        assert sizes[0] == 4  # nodes 0..3 within 3 hops
        assert sizes[5] == 7  # 3 on each side + itself
        assert sizes[20] == 2

    def test_flood_does_not_cross_non_candidates(self, line_of_candidates):
        graph, candidates, _, small = line_of_candidates
        sizes = iff_fragment_sizes(graph, candidates, ttl=10)
        # Even with huge TTL the small fragment stays size 2: the gap
        # (non-candidate nodes) does not forward floods.
        assert sizes[20] == 2
        assert sizes[21] == 2


class TestRunIFF:
    def test_small_fragment_removed(self, line_of_candidates):
        graph, candidates, big, small = line_of_candidates
        survivors = run_iff(graph, candidates, IFFConfig(theta=4, ttl=3))
        assert survivors & small == set()

    def test_large_fragment_interior_survives(self, line_of_candidates):
        graph, candidates, big, _ = line_of_candidates
        survivors = run_iff(graph, candidates, IFFConfig(theta=4, ttl=3))
        # Chain interior sees 7 candidates; chain ends see only 4.
        assert 5 in survivors
        assert 6 in survivors

    def test_theta_one_keeps_everything(self, line_of_candidates):
        graph, candidates, _, _ = line_of_candidates
        assert run_iff(graph, candidates, IFFConfig(theta=1, ttl=3)) == candidates

    def test_huge_theta_removes_everything(self, line_of_candidates):
        graph, candidates, _, _ = line_of_candidates
        assert run_iff(graph, candidates, IFFConfig(theta=100, ttl=3)) == set()

    def test_disabled_passthrough(self, line_of_candidates):
        graph, candidates, _, _ = line_of_candidates
        config = IFFConfig(theta=100, ttl=3, enabled=False)
        assert run_iff(graph, candidates, config) == candidates

    def test_empty_candidates(self, line_of_candidates):
        graph, _, _, _ = line_of_candidates
        assert run_iff(graph, set(), IFFConfig()) == set()

    def test_larger_ttl_saves_spread_fragments(self, line_of_candidates):
        graph, candidates, _, _ = line_of_candidates
        strict = run_iff(graph, candidates, IFFConfig(theta=8, ttl=3))
        relaxed = run_iff(graph, candidates, IFFConfig(theta=8, ttl=5))
        assert strict <= relaxed

    def test_paper_defaults_on_real_boundary(self, sphere_network, sphere_detection):
        """The true sphere boundary forms one big fragment: IFF keeps it."""
        truth = sphere_network.truth_boundary_set
        survivors = run_iff(sphere_network.graph, truth, IFFConfig())
        assert len(survivors) >= 0.95 * len(truth)
