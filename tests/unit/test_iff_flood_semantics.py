"""IFF flood-count semantics on hand-built topologies."""

import numpy as np
import pytest

from repro.core.config import IFFConfig
from repro.core.iff import iff_fragment_sizes, run_iff
from repro.network.graph import NetworkGraph


def _grid2d(w, h, spacing=0.9):
    pts = [[spacing * x, spacing * y, 0.0] for x in range(w) for y in range(h)]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestFloodGeometry:
    def test_grid_center_counts_manhattan_ball(self):
        """On a 4-neighbor grid, TTL-T flood reaches the Manhattan ball."""
        g = _grid2d(9, 9)
        candidates = set(range(81))
        sizes = iff_fragment_sizes(g, candidates, ttl=2)
        center = 4 * 9 + 4
        # Manhattan ball of radius 2: 1 + 4 + 8 = 13 nodes.
        assert sizes[center] == 13

    def test_corner_counts_quarter_ball(self):
        g = _grid2d(9, 9)
        candidates = set(range(81))
        sizes = iff_fragment_sizes(g, candidates, ttl=2)
        corner = 0
        # Quarter ball: {(0,0),(0,1),(1,0),(0,2),(1,1),(2,0)} = 6 nodes.
        assert sizes[corner] == 6

    def test_threshold_cuts_corners_not_centers(self):
        """A theta between corner and center counts demotes only corners."""
        g = _grid2d(9, 9)
        candidates = set(range(81))
        survivors = run_iff(g, candidates, IFFConfig(theta=10, ttl=2))
        assert 0 not in survivors  # corner: 6 < 10
        assert (4 * 9 + 4) in survivors  # center: 13 >= 10


class TestPaperDefaults:
    def test_icosahedron_bound_is_default(self):
        config = IFFConfig()
        # 20 nodes (icosahedron vertices... the paper's minimum hole
        # surface), max 3 hops between them.
        assert (config.theta, config.ttl) == (20, 3)
