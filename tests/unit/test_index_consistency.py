"""Internal consistency between the spatial index's query flavors."""

import numpy as np

from repro.geometry.spatial_index import UniformGridIndex


class TestQueryConsistency:
    def test_pairs_match_neighbor_lists(self, rng):
        points = rng.uniform(0, 3, size=(80, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        pairs = set(index.neighbor_pairs(1.0))
        lists = index.neighbor_lists(1.0)
        rebuilt = set()
        for i, nbrs in enumerate(lists):
            for j in nbrs:
                rebuilt.add((min(i, int(j)), max(i, int(j))))
        assert pairs == rebuilt

    def test_lists_symmetric(self, rng):
        points = rng.uniform(0, 3, size=(60, 3))
        index = UniformGridIndex(points, cell_size=0.7)
        lists = [set(map(int, nbrs)) for nbrs in index.neighbor_lists(1.0)]
        for i, nbrs in enumerate(lists):
            for j in nbrs:
                assert i in lists[j]

    def test_coincident_points_pair_up(self):
        points = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [9.0, 9.0, 9.0]])
        index = UniformGridIndex(points, cell_size=1.0)
        assert (0, 1) in index.neighbor_pairs(0.5)
