"""Unit tests for serialization and mesh export."""

import json
import os

import numpy as np
import pytest

from repro.core.pipeline import BoundaryDetectionResult
from repro.io.meshio import (
    export_mesh_obj,
    export_mesh_off,
    export_mesh_ply,
    export_points_xyz,
)
from repro.io.serialization import (
    load_detection_result,
    load_network,
    save_detection_result,
    save_network,
    write_atomic,
)
from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh


class TestNetworkRoundtrip:
    def test_roundtrip_preserves_everything(self, sphere_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(sphere_network, path)
        loaded = load_network(path)
        assert loaded.n_nodes == sphere_network.n_nodes
        assert np.allclose(loaded.graph.positions, sphere_network.graph.positions)
        assert (loaded.truth_boundary == sphere_network.truth_boundary).all()
        assert loaded.scenario == sphere_network.scenario
        assert loaded.config.seed == sphere_network.config.seed
        # Adjacency identical.
        for i in range(0, loaded.n_nodes, 97):
            assert (
                loaded.graph.neighbors(i).tolist()
                == sphere_network.graph.neighbors(i).tolist()
            )

    def test_version_check(self, sphere_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(sphere_network, path)
        doc = json.loads(path.read_text())
        doc["format_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_network(path)


class TestResultRoundtrip:
    def test_roundtrip(self, tmp_path):
        result = BoundaryDetectionResult(
            candidates={1, 2, 3},
            boundary={1, 2},
            groups=[[1, 2]],
            localization_used="true",
        )
        path = tmp_path / "result.json"
        save_detection_result(result, path)
        loaded = load_detection_result(path)
        assert loaded.candidates == result.candidates
        assert loaded.boundary == result.boundary
        assert loaded.groups == result.groups
        assert loaded.localization_used == "true"


class TestMeshExport:
    def _mesh_and_graph(self):
        positions = np.array(
            [[0, 0, 0], [1, 0, 0], [0.5, 0.9, 0], [0.5, 0.3, 0.8]], dtype=float
        )
        graph = NetworkGraph(positions, radio_range=1.5)
        mesh = TriangularMesh(vertices=[0, 1, 2, 3])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v)
        return mesh, graph

    def test_off_structure(self, tmp_path):
        mesh, graph = self._mesh_and_graph()
        path = tmp_path / "m.off"
        export_mesh_off(mesh, graph, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "OFF"
        n_v, n_f, _ = map(int, lines[1].split())
        assert n_v == 4
        assert n_f == 4
        assert len(lines) == 2 + n_v + n_f

    def test_obj_structure(self, tmp_path):
        mesh, graph = self._mesh_and_graph()
        path = tmp_path / "m.obj"
        export_mesh_obj(mesh, graph, path)
        text = path.read_text()
        assert text.count("\nv ") + text.startswith("v ") == 4
        assert text.count("\nf ") == 4
        # OBJ indices are 1-based.
        assert " 0 " not in text.split("f ", 1)[1]

    def test_ply_structure(self, tmp_path):
        mesh, graph = self._mesh_and_graph()
        path = tmp_path / "m.ply"
        export_mesh_ply(mesh, graph, path)
        text = path.read_text()
        assert text.startswith("ply")
        assert "element vertex 4" in text
        assert "element face 4" in text

    def test_xyz_points(self, tmp_path):
        _, graph = self._mesh_and_graph()
        path = tmp_path / "p.xyz"
        export_points_xyz(graph, [0, 2], path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert lines[0].split() == ["0.000000", "0.000000", "0.000000"]


class TestWriteAtomic:
    def test_writes_content_and_returns_path(self, tmp_path):
        path = tmp_path / "artifact.json"
        returned = write_atomic(path, '{"ok": true}\n')
        assert returned == path
        assert path.read_text() == '{"ok": true}\n'

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text("old")
        write_atomic(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_files_left_behind(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_atomic(path, "data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.json"]

    def test_injected_replace_failure_keeps_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"
        path.write_text("old content")

        def boom(src, dst):
            raise OSError("disk fell off")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk fell off"):
            write_atomic(path, "new content")
        monkeypatch.undo()
        # The destination still holds the previous bytes and the aborted
        # tmp file has been cleaned up.
        assert path.read_text() == "old content"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.json"]

    def test_injected_write_failure_leaves_no_destination(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"

        class ExplodingHandle:
            def __init__(self, fd):
                os.close(fd)

            def write(self, text):
                raise OSError("enospc")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(os, "fdopen", lambda fd, *a, **k: ExplodingHandle(fd))
        with pytest.raises(OSError, match="enospc"):
            write_atomic(path, "data")
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
