"""Unit tests for landmark election and Voronoi cells."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.surface.landmarks import assign_voronoi_cells, cell_sizes, elect_landmarks


@pytest.fixture
def ring_graph():
    """A 24-node ring (hop distance = ring distance)."""
    n = 24
    pts = [
        [np.cos(2 * np.pi * i / n) * 3.2, np.sin(2 * np.pi * i / n) * 3.2, 0.0]
        for i in range(n)
    ]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestElection:
    def test_landmarks_k_separated(self, ring_graph):
        group = list(range(24))
        for k in (2, 3, 4):
            landmarks = elect_landmarks(ring_graph, group, k)
            members = set(group)
            for i, a in enumerate(landmarks):
                hops = ring_graph.bfs_hops([a], within=members)
                for b in landmarks[i + 1 :]:
                    assert hops[b] >= k

    def test_maximality_every_node_covered(self, ring_graph):
        group = list(range(24))
        k = 3
        landmarks = elect_landmarks(ring_graph, group, k)
        hops = ring_graph.bfs_hops(landmarks, within=set(group))
        assert all(hops[n] <= k - 1 for n in group)

    def test_k_one_selects_everyone(self, ring_graph):
        group = list(range(24))
        assert elect_landmarks(ring_graph, group, 1) == group

    def test_lowest_ids_win(self, ring_graph):
        landmarks = elect_landmarks(ring_graph, range(24), 3)
        assert landmarks[0] == 0

    def test_invalid_k(self, ring_graph):
        with pytest.raises(ValueError):
            elect_landmarks(ring_graph, range(24), 0)

    def test_restricted_to_group(self, ring_graph):
        """Nodes outside the group never become landmarks."""
        group = list(range(0, 12))
        landmarks = elect_landmarks(ring_graph, group, 3)
        assert all(l in group for l in landmarks)


class TestVoronoiCells:
    def test_every_node_assigned(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        cells = assign_voronoi_cells(ring_graph, group, landmarks)
        assert set(cells) == set(group)

    def test_landmarks_own_themselves(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        cells = assign_voronoi_cells(ring_graph, group, landmarks)
        for l in landmarks:
            assert cells[l] == l

    def test_closest_assignment(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 4)
        cells = assign_voronoi_cells(ring_graph, group, landmarks)
        members = set(group)
        for node, owner in cells.items():
            d_owner = ring_graph.bfs_hops([owner], within=members)[node]
            for other in landmarks:
                d_other = ring_graph.bfs_hops([other], within=members)[node]
                assert d_owner <= d_other

    def test_tie_breaks_to_smaller_id(self):
        """A 5-chain with landmarks at both ends: the middle joins the lower ID."""
        pts = np.array([[0.9 * i, 0, 0] for i in range(5)])
        g = NetworkGraph(pts, radio_range=1.0)
        cells = assign_voronoi_cells(g, range(5), [0, 4])
        assert cells[2] == 0

    def test_landmark_outside_group_rejected(self, ring_graph):
        with pytest.raises(ValueError):
            assign_voronoi_cells(ring_graph, range(12), [20])

    def test_cell_sizes_sum(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        cells = assign_voronoi_cells(ring_graph, group, landmarks)
        sizes = cell_sizes(cells)
        assert sum(sizes.values()) == 24
