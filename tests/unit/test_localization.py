"""Unit tests for local coordinate establishment."""

import numpy as np
import pytest

from repro.geometry.transforms import procrustes_disparity
from repro.network.graph import NetworkGraph
from repro.network.localization import (
    establish_local_frame,
    frame_distance_residual,
    local_frames,
    true_local_frame,
)
from repro.network.measurement import NoError, UniformAbsoluteError, measure_distances


@pytest.fixture
def dense_cluster(rng):
    """~25 nodes inside a ball of radius 1.2 (well cross-connected)."""
    pts = rng.uniform(-0.7, 0.7, size=(25, 3))
    return NetworkGraph(pts, radio_range=1.0)


class TestFrameStructure:
    def test_member_order(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = establish_local_frame(dense_cluster, measured, 0, hops=2)
        assert frame.members[0] == 0
        one_hop = [int(v) for v in dense_cluster.neighbors(0)]
        assert frame.members[1 : 1 + frame.n_one_hop] == one_hop

    def test_one_hop_frame_excludes_two_hop(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = establish_local_frame(dense_cluster, measured, 0, hops=1)
        assert len(frame.members) == 1 + frame.n_one_hop

    def test_two_hop_frame_superset(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        f1 = establish_local_frame(dense_cluster, measured, 0, hops=1)
        f2 = establish_local_frame(dense_cluster, measured, 0, hops=2)
        assert set(f1.members) <= set(f2.members)

    def test_coordinate_accessors(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = establish_local_frame(dense_cluster, measured, 0)
        assert frame.origin_coordinates.shape == (3,)
        assert frame.neighbor_coordinates.shape == (frame.n_one_hop, 3)
        assert frame.collection_coordinates.shape == (len(frame.members) - 1, 3)


class TestFrameAccuracy:
    def test_exact_distances_recover_geometry(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = establish_local_frame(dense_cluster, measured, 0)
        true_pts = dense_cluster.positions[np.asarray(frame.members)]
        assert procrustes_disparity(frame.coordinates, true_pts) < 0.02

    def test_residual_zero_without_error(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = establish_local_frame(dense_cluster, measured, 0)
        assert frame_distance_residual(dense_cluster, frame) < 0.02

    def test_residual_grows_with_error(self, dense_cluster):
        rng = np.random.default_rng(0)
        clean = measure_distances(dense_cluster, NoError(), rng)
        noisy = measure_distances(
            dense_cluster, UniformAbsoluteError(0.4), np.random.default_rng(1)
        )
        f_clean = establish_local_frame(dense_cluster, clean, 0)
        f_noisy = establish_local_frame(dense_cluster, noisy, 0)
        assert frame_distance_residual(dense_cluster, f_noisy) > frame_distance_residual(
            dense_cluster, f_clean
        )

    def test_true_frame_is_exact(self, dense_cluster):
        frame = true_local_frame(dense_cluster, 3)
        assert frame_distance_residual(dense_cluster, frame) == pytest.approx(0.0)


class TestLocalFramesIterator:
    def test_yields_every_node(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frames = list(local_frames(dense_cluster, measured))
        assert [f.node for f in frames] == list(range(dense_cluster.n_nodes))
