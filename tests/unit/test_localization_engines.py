"""Differential tests for the batched localization engine.

The engine contract (see :mod:`repro.network.localization`): for every
node, ``batch`` and ``pernode`` produce the same member list, the same
one-hop count, and *exactly* the same SMACOF iteration count, with
coordinates within :data:`repro.geometry.mds.SMACOF_BATCH_COORD_TOL`.
The contract is checked across every library scenario and both noise
regimes (perfect ranging and the paper's 30% measured-mode error).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.configschema import extract_config_schema
from repro.core.config import DetectorConfig, LocalizationConfig
from repro.geometry.mds import SMACOF_BATCH_COORD_TOL
from repro.network.generator import DeploymentConfig, generate_network
from repro.network.localization import (
    LocalFrame,
    build_frames,
    establish_local_frame,
    frame_distance_residual,
)
from repro.network.measurement import (
    NoError,
    UniformAbsoluteError,
    measure_distances,
)
from repro.shapes.library import SCENARIOS, scenario_by_name

NOISE_MODELS = {
    "perfect": NoError(),
    "measured_30pct": UniformAbsoluteError(0.3),
}


def _small_network(scenario: str):
    return generate_network(
        scenario_by_name(scenario),
        DeploymentConfig(
            n_surface=60, n_interior=90, target_degree=12.0, seed=17
        ),
        scenario=scenario,
    )


def _assert_frames_observably_identical(batch, pernode):
    assert len(batch) == len(pernode)
    for a, b in zip(batch, pernode):
        assert a.node == b.node
        assert a.members == b.members
        assert a.n_one_hop == b.n_one_hop
        assert a.smacof_iterations == b.smacof_iterations
        deviation = float(np.abs(a.coordinates - b.coordinates).max())
        assert deviation <= SMACOF_BATCH_COORD_TOL, (
            f"node {a.node}: coordinate deviation {deviation:.3e} exceeds "
            f"{SMACOF_BATCH_COORD_TOL:.0e}"
        )


class TestEngineDifferential:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("noise", sorted(NOISE_MODELS))
    def test_batch_matches_pernode_oracle(self, scenario, noise):
        network = _small_network(scenario)
        measured = measure_distances(
            network.graph, NOISE_MODELS[noise], np.random.default_rng(23)
        )
        batch = build_frames(network.graph, measured, engine="batch")
        pernode = build_frames(network.graph, measured, engine="pernode")
        _assert_frames_observably_identical(batch, pernode)

    def test_engines_agree_on_node_subsets(self):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, UniformAbsoluteError(0.3), np.random.default_rng(3)
        )
        nodes = [5, 0, 42, 17]
        batch = build_frames(network.graph, measured, nodes=nodes)
        pernode = build_frames(
            network.graph, measured, engine="pernode", nodes=nodes
        )
        assert [f.node for f in batch] == nodes
        _assert_frames_observably_identical(batch, pernode)

    def test_batch_is_partition_invariant(self):
        """A frame's bits must not depend on which batch it lands in."""
        network = _small_network("sphere")
        graph = network.graph
        measured = measure_distances(
            graph, UniformAbsoluteError(0.3), np.random.default_rng(3)
        )
        whole = build_frames(graph, measured)
        split = build_frames(
            graph, measured, nodes=range(graph.n_nodes // 2)
        ) + build_frames(
            graph, measured, nodes=range(graph.n_nodes // 2, graph.n_nodes)
        )
        for a, b in zip(whole, split):
            assert a.members == b.members
            assert a.smacof_iterations == b.smacof_iterations
            assert a.coordinates.tobytes() == b.coordinates.tobytes()

    def test_pernode_matches_establish_local_frame(self):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, NoError(), np.random.default_rng(0)
        )
        frames = build_frames(network.graph, measured, engine="pernode")
        direct = establish_local_frame(network.graph, measured, 7)
        assert frames[7].members == direct.members
        assert np.array_equal(frames[7].coordinates, direct.coordinates)

    def test_unknown_engine_rejected(self):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, NoError(), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="engine"):
            build_frames(network.graph, measured, engine="fast")


class TestResidualVectorization:
    def test_matches_python_pair_loop(self):
        """Regression: the broadcasted residual equals the original loop."""
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, UniformAbsoluteError(0.3), np.random.default_rng(9)
        )
        frame = establish_local_frame(network.graph, measured, 11)
        members = np.asarray(frame.members, dtype=int)
        true_pts = network.graph.positions[members]
        est_pts = np.asarray(frame.coordinates, dtype=float)
        diffs = [
            np.linalg.norm(est_pts[a] - est_pts[b])
            - np.linalg.norm(true_pts[a] - true_pts[b])
            for a in range(len(members))
            for b in range(a + 1, len(members))
        ]
        expected = float(np.sqrt(np.mean(np.square(diffs))))
        assert frame_distance_residual(network.graph, frame) == pytest.approx(
            expected, rel=0, abs=1e-12
        )

    def test_degenerate_frame_is_zero(self):
        network = _small_network("sphere")
        frame = LocalFrame(
            node=0, members=[0], coordinates=np.zeros((1, 3)), n_one_hop=0
        )
        assert frame_distance_residual(network.graph, frame) == 0.0


class TestLocalizationConfig:
    def test_defaults_to_batch(self):
        assert LocalizationConfig().engine == "batch"
        assert DetectorConfig().localization_config.engine == "batch"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            LocalizationConfig(engine="fast")

    def test_engine_key_registered_with_cfg006(self):
        """repro-lint's config-key registry must know the new key."""
        import repro.core.config as config_module
        import inspect

        schema = extract_config_schema(inspect.getsource(config_module))
        assert "engine" in schema.classes["LocalizationConfig"].fields
        assert (
            schema.resolve_chain("DetectorConfig", "localization_config")
            == "LocalizationConfig"
        )
