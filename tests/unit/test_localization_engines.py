"""Differential tests for the batched and sparse localization engines.

The engine contract (see :mod:`repro.network.localization`): for every
node, ``batch``, ``sparse``, and ``pernode`` produce the same member
list, the same one-hop count, and *exactly* the same SMACOF iteration
count, with coordinates within
:data:`repro.geometry.mds.SMACOF_BATCH_COORD_TOL`.  The contract is
checked across every library scenario and both noise regimes (perfect
ranging and the paper's 30% measured-mode error), at the exact member
counts that straddle the scalar-fallback boundary, and on degenerate
(single-member, fully collinear) frames.  A property test additionally
pins the sparse shortest-path completion to the dense Floyd-Warshall
relaxation within the same 1e-9 tolerance, unreachable pairs included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.configschema import extract_config_schema
from repro.core.config import DetectorConfig, LocalizationConfig
from repro.geometry.mds import (
    SMACOF_BATCH_COORD_TOL,
    UNREACHABLE_LOCAL_DISTANCE,
    complete_distance_matrix_batch,
    complete_distance_matrix_sparse,
)
from repro.network.generator import DeploymentConfig, generate_network
from repro.network.graph import NetworkGraph
from repro.network.localization import (
    SCALAR_FALLBACK_MEMBERS,
    LocalFrame,
    build_frames,
    establish_local_frame,
    frame_distance_residual,
)
from repro.network.measurement import (
    NoError,
    UniformAbsoluteError,
    measure_distances,
)
from repro.shapes.library import SCENARIOS, scenario_by_name

NOISE_MODELS = {
    "perfect": NoError(),
    "measured_30pct": UniformAbsoluteError(0.3),
}

ENGINES_UNDER_TEST = ("batch", "sparse")


def _small_network(scenario: str):
    return generate_network(
        scenario_by_name(scenario),
        DeploymentConfig(
            n_surface=60, n_interior=90, target_degree=12.0, seed=17
        ),
        scenario=scenario,
    )


def _assert_frames_observably_identical(batch, pernode):
    assert len(batch) == len(pernode)
    for a, b in zip(batch, pernode):
        assert a.node == b.node
        assert a.members == b.members
        assert a.n_one_hop == b.n_one_hop
        assert a.smacof_iterations == b.smacof_iterations
        deviation = float(np.abs(a.coordinates - b.coordinates).max())
        assert deviation <= SMACOF_BATCH_COORD_TOL, (
            f"node {a.node}: coordinate deviation {deviation:.3e} exceeds "
            f"{SMACOF_BATCH_COORD_TOL:.0e}"
        )


class TestEngineDifferential:
    @pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("noise", sorted(NOISE_MODELS))
    def test_engine_matches_pernode_oracle(self, scenario, noise, engine):
        network = _small_network(scenario)
        measured = measure_distances(
            network.graph, NOISE_MODELS[noise], np.random.default_rng(23)
        )
        frames = build_frames(network.graph, measured, engine=engine)
        pernode = build_frames(network.graph, measured, engine="pernode")
        _assert_frames_observably_identical(frames, pernode)

    @pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
    def test_engines_agree_on_node_subsets(self, engine):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, UniformAbsoluteError(0.3), np.random.default_rng(3)
        )
        nodes = [5, 0, 42, 17]
        frames = build_frames(network.graph, measured, engine=engine, nodes=nodes)
        pernode = build_frames(
            network.graph, measured, engine="pernode", nodes=nodes
        )
        assert [f.node for f in frames] == nodes
        _assert_frames_observably_identical(frames, pernode)

    def test_batch_is_partition_invariant(self):
        """A frame's bits must not depend on which batch it lands in."""
        network = _small_network("sphere")
        graph = network.graph
        measured = measure_distances(
            graph, UniformAbsoluteError(0.3), np.random.default_rng(3)
        )
        whole = build_frames(graph, measured)
        split = build_frames(
            graph, measured, nodes=range(graph.n_nodes // 2)
        ) + build_frames(
            graph, measured, nodes=range(graph.n_nodes // 2, graph.n_nodes)
        )
        for a, b in zip(whole, split):
            assert a.members == b.members
            assert a.smacof_iterations == b.smacof_iterations
            assert a.coordinates.tobytes() == b.coordinates.tobytes()

    def test_pernode_matches_establish_local_frame(self):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, NoError(), np.random.default_rng(0)
        )
        frames = build_frames(network.graph, measured, engine="pernode")
        direct = establish_local_frame(network.graph, measured, 7)
        assert frames[7].members == direct.members
        assert np.array_equal(frames[7].coordinates, direct.coordinates)

    def test_unknown_engine_rejected(self):
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, NoError(), np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="engine"):
            build_frames(network.graph, measured, engine="fast")


def _cluster_graph(m: int, *, seed: int = 0, collinear: bool = False):
    """A complete-graph cluster: every node's frame has exactly ``m`` members.

    Points are confined to a ball of radius 0.3 (radio range 1.0), so all
    pairs are mutually in range and each collection is the whole cluster.
    ``collinear=True`` places them on a line instead -- a fully degenerate
    (rank-1) configuration whose classical-MDS Gram matrix has two
    mathematically-zero eigenvalues.
    """
    rng = np.random.default_rng(seed)
    if collinear:
        positions = np.zeros((m, 3))
        positions[:, 0] = np.sort(rng.uniform(0.0, 0.6, size=m))
    else:
        positions = rng.uniform(-0.17, 0.17, size=(m, 3))
    return NetworkGraph(positions, radio_range=1.0)


def _all_engine_frames(graph, *, noise_seed: int = 5):
    measured = measure_distances(
        graph, UniformAbsoluteError(0.3), np.random.default_rng(noise_seed)
    )
    return {
        engine: build_frames(graph, measured, engine=engine)
        for engine in ENGINES_UNDER_TEST + ("pernode",)
    }


class TestExactMemberCounts:
    """The scalar-fallback boundary: frames of exactly 7, 8, and 9 members.

    :data:`SCALAR_FALLBACK_MEMBERS` (= 8) routes sub-threshold frames to
    the scalar MDS kernel inside the batched engines; 7/8/9 pin the
    below/at/above cases so a routing bug on either side of the boundary
    cannot hide in mixed-size networks.
    """

    def test_boundary_straddles_the_fallback_constant(self):
        assert SCALAR_FALLBACK_MEMBERS == 8

    @pytest.mark.parametrize(
        "m",
        [
            SCALAR_FALLBACK_MEMBERS - 1,
            SCALAR_FALLBACK_MEMBERS,
            SCALAR_FALLBACK_MEMBERS + 1,
        ],
    )
    def test_engines_agree_at_exact_member_count(self, m):
        graph = _cluster_graph(m, seed=m)
        frames = _all_engine_frames(graph)
        for engine_frames in frames.values():
            assert all(len(f.members) == m for f in engine_frames)
        for engine in ENGINES_UNDER_TEST:
            _assert_frames_observably_identical(
                frames[engine], frames["pernode"]
            )


class TestDegenerateFrames:
    def test_single_member_frame(self):
        """An isolated node's frame is just itself, in every engine."""
        positions = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0], [9.0, 0.0, 0.0]])
        graph = NetworkGraph(positions, radio_range=1.0)
        frames = _all_engine_frames(graph)
        for engine_frames in frames.values():
            for f in engine_frames:
                assert f.members == [f.node]
                assert f.n_one_hop == 0
                assert f.coordinates.shape == (1, 3)
        for engine in ENGINES_UNDER_TEST:
            _assert_frames_observably_identical(
                frames[engine], frames["pernode"]
            )

    @pytest.mark.parametrize("m", [5, 9, 16])
    def test_fully_collinear_frame(self, m):
        """Rank-1 configurations: degenerate eigenvalues must not break
        the cross-engine coordinate contract (the near-null eigenvectors
        are numerically arbitrary unless zeroed consistently)."""
        graph = _cluster_graph(m, seed=m, collinear=True)
        frames = _all_engine_frames(graph)
        for engine in ENGINES_UNDER_TEST:
            _assert_frames_observably_identical(
                frames[engine], frames["pernode"]
            )


class TestSparseCompletionProperty:
    """Sparse Dijkstra completion vs dense Floyd-Warshall, within 1e-9.

    Randomized partial frames, missing entries included; slices whose
    measured subgraph is disconnected must substitute
    :data:`UNREACHABLE_LOCAL_DISTANCE` identically in both paths.
    """

    @staticmethod
    def _random_partial(seed: int, b: int, m: int, p_missing: float):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0.0, 1.0, size=(b, m, 3))
        full = np.linalg.norm(pts[:, :, None, :] - pts[:, None, :, :], axis=-1)
        missing = rng.uniform(size=(b, m, m)) < p_missing
        missing |= missing.swapaxes(1, 2)  # keep the matrix symmetric
        partial = np.where(missing, np.inf, full)
        diag = np.arange(m)
        partial[:, diag, diag] = 0.0
        return partial

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        b=st.integers(1, 4),
        m=st.integers(2, 24),
        p_missing=st.floats(0.0, 0.95),
    )
    def test_sparse_matches_dense_fw(self, seed, b, m, p_missing):
        partial = self._random_partial(seed, b, m, p_missing)
        dense = complete_distance_matrix_batch(partial)
        sparse = complete_distance_matrix_sparse(partial)
        assert np.isfinite(dense).all() and np.isfinite(sparse).all()
        deviation = float(np.abs(dense - sparse).max())
        assert deviation <= SMACOF_BATCH_COORD_TOL

    def test_unreachable_pairs_hit_the_sentinel(self):
        # Two 3-node components inside one 6-member frame: cross-component
        # pairs stay unreachable and both completions must emit the
        # sentinel, not inf and not a path sum.
        m = 6
        partial = np.full((1, m, m), np.inf)
        diag = np.arange(m)
        partial[0, diag, diag] = 0.0
        for i, j in [(0, 1), (1, 2), (3, 4), (4, 5)]:
            partial[0, i, j] = partial[0, j, i] = 0.4
        dense = complete_distance_matrix_batch(partial)
        sparse = complete_distance_matrix_sparse(partial)
        assert np.array_equal(dense, sparse)
        assert dense[0, 0, 3] == UNREACHABLE_LOCAL_DISTANCE
        assert dense[0, 5, 2] == UNREACHABLE_LOCAL_DISTANCE
        assert dense[0, 0, 2] == pytest.approx(0.8)

    def test_fully_disconnected_frame_is_all_sentinel(self):
        m = 4
        partial = np.full((2, m, m), np.inf)
        diag = np.arange(m)
        partial[:, diag, diag] = 0.0
        dense = complete_distance_matrix_batch(partial)
        sparse = complete_distance_matrix_sparse(partial)
        assert np.array_equal(dense, sparse)
        off_diag = ~np.eye(m, dtype=bool)
        assert (dense[:, off_diag] == UNREACHABLE_LOCAL_DISTANCE).all()


class TestResidualVectorization:
    def test_matches_python_pair_loop(self):
        """Regression: the broadcasted residual equals the original loop."""
        network = _small_network("sphere")
        measured = measure_distances(
            network.graph, UniformAbsoluteError(0.3), np.random.default_rng(9)
        )
        frame = establish_local_frame(network.graph, measured, 11)
        members = np.asarray(frame.members, dtype=int)
        true_pts = network.graph.positions[members]
        est_pts = np.asarray(frame.coordinates, dtype=float)
        diffs = [
            np.linalg.norm(est_pts[a] - est_pts[b])
            - np.linalg.norm(true_pts[a] - true_pts[b])
            for a in range(len(members))
            for b in range(a + 1, len(members))
        ]
        expected = float(np.sqrt(np.mean(np.square(diffs))))
        assert frame_distance_residual(network.graph, frame) == pytest.approx(
            expected, rel=0, abs=1e-12
        )

    def test_degenerate_frame_is_zero(self):
        network = _small_network("sphere")
        frame = LocalFrame(
            node=0, members=[0], coordinates=np.zeros((1, 3)), n_one_hop=0
        )
        assert frame_distance_residual(network.graph, frame) == 0.0


class TestLocalizationConfig:
    def test_defaults_to_batch(self):
        assert LocalizationConfig().engine == "batch"
        assert DetectorConfig().localization_config.engine == "batch"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            LocalizationConfig(engine="fast")

    def test_engine_key_registered_with_cfg006(self):
        """repro-lint's config-key registry must know the new key."""
        import repro.core.config as config_module
        import inspect

        schema = extract_config_schema(inspect.getsource(config_module))
        assert "engine" in schema.classes["LocalizationConfig"].fields
        assert (
            schema.resolve_chain("DetectorConfig", "localization_config")
            == "LocalizationConfig"
        )
