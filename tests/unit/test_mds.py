"""Unit tests for classical MDS, completion, and SMACOF refinement."""

import numpy as np
import pytest

from repro.geometry.mds import (
    classical_mds,
    complete_distance_matrix,
    local_mds_embedding,
    smacof_refine,
)
from repro.geometry.primitives import pairwise_distances
from repro.geometry.transforms import procrustes_disparity


class TestCompleteDistanceMatrix:
    def test_no_missing_passthrough(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(complete_distance_matrix(d), d)

    def test_fills_via_shortest_path(self):
        # Chain 0-1-2 with edge 0-2 missing: completed as 1+1=2.
        d = np.array(
            [[0.0, 1.0, np.inf], [1.0, 0.0, 1.0], [np.inf, 1.0, 0.0]]
        )
        completed = complete_distance_matrix(d)
        assert completed[0, 2] == pytest.approx(2.0)

    def test_triangle_inequality_tightening(self):
        # A long direct measurement is replaced by a shorter 2-leg path.
        d = np.array(
            [[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]]
        )
        completed = complete_distance_matrix(d)
        assert completed[0, 2] == pytest.approx(2.0)

    def test_unreachable_gets_ceiling(self):
        d = np.array([[0.0, np.inf], [np.inf, 0.0]])
        completed = complete_distance_matrix(d)
        assert completed[0, 1] == pytest.approx(2.0)  # UNREACHABLE_LOCAL_DISTANCE

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            complete_distance_matrix(np.zeros((2, 3)))


class TestClassicalMDS:
    def test_recovers_exact_geometry(self, rng):
        pts = rng.normal(size=(12, 3))
        coords = classical_mds(pairwise_distances(pts))
        assert procrustes_disparity(coords, pts) < 1e-8

    def test_output_centered(self, rng):
        pts = rng.normal(size=(8, 3)) + 10.0
        coords = classical_mds(pairwise_distances(pts))
        assert np.allclose(coords.mean(axis=0), 0.0, atol=1e-8)

    def test_planar_input_gets_zero_third_axis(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], float)
        coords = classical_mds(pairwise_distances(pts))
        # Planar configuration embeds with (near) zero variance on one axis.
        spread = np.sort(coords.std(axis=0))
        assert spread[0] < 1e-8

    def test_empty_input(self):
        assert classical_mds(np.zeros((0, 0))).shape == (0, 3)

    def test_infinite_entries_rejected(self):
        with pytest.raises(ValueError):
            classical_mds(np.array([[0.0, np.inf], [np.inf, 0.0]]))


class TestSmacofRefine:
    def test_improves_noisy_init(self, rng):
        pts = rng.normal(size=(15, 3))
        target = pairwise_distances(pts)
        weights = np.ones_like(target) - np.eye(15)
        init = pts + rng.normal(scale=0.3, size=pts.shape)
        refined = smacof_refine(init, target, weights, iterations=100)
        assert procrustes_disparity(refined, pts) < procrustes_disparity(init, pts)

    def test_zero_weights_noop(self, rng):
        pts = rng.normal(size=(6, 3))
        out = smacof_refine(
            pts, np.zeros((6, 6)), np.zeros((6, 6)), iterations=10
        )
        assert np.allclose(out, pts)

    def test_single_point_noop(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        out = smacof_refine(pts, np.zeros((1, 1)), np.zeros((1, 1)))
        assert np.allclose(out, pts)


class TestLocalMDSEmbedding:
    def test_partial_measurements_recovered_with_refinement(self, rng):
        """Exact distances on a partial graph embed near-exactly."""
        pts = rng.uniform(-0.6, 0.6, size=(14, 3))
        true_d = pairwise_distances(pts)
        partial = true_d.copy()
        # Knock out the longest 30% of pairs (out of radio range).
        threshold = np.quantile(true_d[true_d > 0], 0.7)
        partial[true_d > threshold] = np.inf
        np.fill_diagonal(partial, 0.0)
        coords = local_mds_embedding(partial)
        assert procrustes_disparity(coords, pts) < 0.05

    def test_refinement_beats_classical_on_partial_data(self, rng):
        pts = rng.uniform(-0.6, 0.6, size=(14, 3))
        true_d = pairwise_distances(pts)
        partial = true_d.copy()
        threshold = np.quantile(true_d[true_d > 0], 0.6)
        partial[true_d > threshold] = np.inf
        np.fill_diagonal(partial, 0.0)
        refined = local_mds_embedding(partial, refine=True)
        unrefined = local_mds_embedding(partial, refine=False)
        assert procrustes_disparity(refined, pts) <= procrustes_disparity(
            unrefined, pts
        ) + 1e-9
