"""Batched MDS kernels versus their scalar twins, and the in-place FW fix.

Contract (see the :mod:`repro.geometry.mds` docstring): completion and
classical MDS are *bit-identical* per slice; batched SMACOF matches the
scalar refinement within :data:`SMACOF_BATCH_COORD_TOL` while taking
exactly the same number of majorization steps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.mds import (
    FW_CHUNK_SLICES,
    SMACOF_BATCH_COORD_TOL,
    classical_mds,
    classical_mds_batch,
    complete_distance_matrix,
    complete_distance_matrix_batch,
    local_mds_embedding,
    local_mds_embedding_batch,
    smacof_refine,
    smacof_refine_counted,
)


def _random_partial_stack(rng, b, m, missing_fraction=0.4):
    """Symmetric partial distance matrices with inf-marked missing pairs."""
    stack = []
    for _ in range(b):
        pts = rng.uniform(0.0, 2.0, size=(m, 3))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        dist += rng.uniform(-0.1, 0.1, size=dist.shape)
        dist = np.abs((dist + dist.T) / 2.0)
        missing = rng.random((m, m)) < missing_fraction
        missing |= missing.T
        dist[missing] = np.inf
        np.fill_diagonal(dist, 0.0)
        stack.append(dist)
    return np.stack(stack)


class TestInPlaceFloydWarshall:
    def test_results_unchanged_vs_reference_relaxation(self, rng):
        """The satellite fix: in-place relaxation equals the naive form."""
        partial = _random_partial_stack(rng, 1, 15)[0]
        reference = np.array(partial)
        m = reference.shape[0]
        for k in range(m):
            reference = np.minimum(
                reference, reference[:, k, None] + reference[None, k, :]
            )
        reference[~np.isfinite(reference)] = 2.0
        assert np.array_equal(complete_distance_matrix(partial), reference)

    def test_input_not_mutated(self, rng):
        partial = _random_partial_stack(rng, 1, 8)[0]
        before = partial.copy()
        complete_distance_matrix(partial)
        assert np.array_equal(partial, before, equal_nan=True)


class TestBatchedCompletion:
    @pytest.mark.parametrize("b", [1, FW_CHUNK_SLICES, FW_CHUNK_SLICES + 3])
    def test_bit_identical_per_slice(self, rng, b):
        stack = _random_partial_stack(rng, b, 12)
        batch = complete_distance_matrix_batch(stack)
        for i in range(b):
            assert np.array_equal(batch[i], complete_distance_matrix(stack[i]))

    def test_rejects_non_stack_input(self):
        with pytest.raises(ValueError, match="B, m, m"):
            complete_distance_matrix_batch(np.zeros((4, 4)))


class TestBatchedClassicalMDS:
    def test_bit_identical_per_slice(self, rng):
        stack = complete_distance_matrix_batch(_random_partial_stack(rng, 9, 14))
        batch = classical_mds_batch(stack)
        for i in range(stack.shape[0]):
            assert np.array_equal(batch[i], classical_mds(stack[i]))


class TestBatchedSmacof:
    def test_matches_scalar_within_tol_with_exact_steps(self, rng):
        stack = _random_partial_stack(rng, 13, 16)
        coords, steps = local_mds_embedding_batch(stack)
        for i in range(stack.shape[0]):
            info = {}
            scalar = local_mds_embedding(stack[i], info=info)
            assert steps[i] == info["smacof_iterations"]
            deviation = float(np.abs(coords[i] - scalar).max())
            assert deviation <= SMACOF_BATCH_COORD_TOL

    def test_counted_wrapper_matches_uncounted(self, rng):
        stack = _random_partial_stack(rng, 1, 12)[0]
        completed = complete_distance_matrix(stack)
        init = classical_mds(completed)
        weights = np.isfinite(stack).astype(float)
        np.fill_diagonal(weights, 0.0)
        target = np.where(np.isfinite(stack), stack, 0.0)
        counted, n_steps = smacof_refine_counted(init, target, weights)
        assert np.array_equal(counted, smacof_refine(init, target, weights))
        assert n_steps > 0

    def test_refine_off_reports_zero_steps(self, rng):
        stack = _random_partial_stack(rng, 4, 10)
        coords, steps = local_mds_embedding_batch(stack, refine=False)
        assert coords.shape == (4, 10, 3)
        assert np.array_equal(steps, np.zeros(4, dtype=int))

    def test_early_convergers_freeze_while_others_refine(self, rng):
        """Per-slice stopping: a perfect slice stops early, a noisy one
        keeps iterating, and neither disturbs the other's result."""
        pts = rng.uniform(0.0, 2.0, size=(12, 3))
        exact = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        noisy = _random_partial_stack(rng, 1, 12)[0]
        stack = np.stack([exact, noisy])
        _, steps = local_mds_embedding_batch(stack)
        info = {}
        local_mds_embedding(noisy, info=info)
        assert steps[1] == info["smacof_iterations"]
        info_exact = {}
        local_mds_embedding(exact, info=info_exact)
        assert steps[0] == info_exact["smacof_iterations"]
