"""SMACOF refinement details: weighting, early stop, pinned behavior."""

import numpy as np
import pytest

from repro.geometry.mds import smacof_refine
from repro.geometry.primitives import pairwise_distances
from repro.geometry.transforms import procrustes_disparity


class TestWeighting:
    def test_zero_weight_pairs_ignored(self, rng):
        """Corrupting a zero-weight entry must not change the result."""
        pts = rng.normal(size=(10, 3))
        target = pairwise_distances(pts)
        weights = np.ones_like(target) - np.eye(10)
        weights[0, 1] = weights[1, 0] = 0.0
        init = pts + rng.normal(scale=0.1, size=pts.shape)

        corrupted = target.copy()
        corrupted[0, 1] = corrupted[1, 0] = 99.0
        a = smacof_refine(init, target, weights, iterations=40)
        b = smacof_refine(init, corrupted, weights, iterations=40)
        assert np.allclose(a, b)

    def test_heavier_weight_fits_tighter(self, rng):
        """Up-weighted pairs end closer to their targets."""
        pts = rng.normal(size=(12, 3))
        target = pairwise_distances(pts)
        # Conflicting demand: stretch pair (0, 1) by 50%.
        conflicted = target.copy()
        conflicted[0, 1] = conflicted[1, 0] = target[0, 1] * 1.5
        init = pts.copy()

        w_low = np.ones_like(target) - np.eye(12)
        w_high = w_low.copy()
        w_high[0, 1] = w_high[1, 0] = 50.0

        out_low = smacof_refine(init, conflicted, w_low, iterations=80)
        out_high = smacof_refine(init, conflicted, w_high, iterations=80)
        err_low = abs(
            np.linalg.norm(out_low[0] - out_low[1]) - conflicted[0, 1]
        )
        err_high = abs(
            np.linalg.norm(out_high[0] - out_high[1]) - conflicted[0, 1]
        )
        assert err_high < err_low


class TestConvergence:
    def test_perfect_init_unchanged(self, rng):
        pts = rng.normal(size=(8, 3))
        target = pairwise_distances(pts)
        weights = np.ones_like(target) - np.eye(8)
        out = smacof_refine(pts, target, weights, iterations=30)
        assert procrustes_disparity(out, pts) < 1e-6

    def test_iterations_zero_is_identity(self, rng):
        pts = rng.normal(size=(6, 3))
        target = pairwise_distances(pts) * 2.0
        weights = np.ones_like(target) - np.eye(6)
        out = smacof_refine(pts, target, weights, iterations=0)
        assert np.allclose(out, pts)
