"""Unit tests for distance measurement and error models."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.network.measurement import (
    GaussianError,
    MeasuredDistances,
    NoError,
    UniformAbsoluteError,
    UniformRelativeError,
    measure_distances,
)


@pytest.fixture
def small_graph():
    positions = np.array(
        [[0, 0, 0], [0.8, 0, 0], [0, 0.8, 0], [0.8, 0.8, 0]], dtype=float
    )
    return NetworkGraph(positions, radio_range=1.0)


class TestErrorModels:
    def test_no_error_identity(self, rng):
        d = np.array([0.1, 0.5, 0.9])
        assert np.allclose(NoError().perturb(d, rng), d)

    def test_uniform_absolute_bounds(self, rng):
        d = np.full(2000, 0.5)
        out = UniformAbsoluteError(0.2).perturb(d, rng)
        assert (out >= 0.3 - 1e-12).all()
        assert (out <= 0.7 + 1e-12).all()
        assert out.std() > 0.05  # actually random

    def test_uniform_absolute_clamps_positive(self, rng):
        d = np.full(2000, 0.05)
        out = UniformAbsoluteError(0.5).perturb(d, rng)
        assert (out > 0).all()

    def test_uniform_relative_bounds(self, rng):
        d = np.full(2000, 0.5)
        out = UniformRelativeError(0.1).perturb(d, rng)
        assert (out >= 0.45 - 1e-12).all()
        assert (out <= 0.55 + 1e-12).all()

    def test_gaussian_zero_sigma_identity(self, rng):
        d = np.array([0.3, 0.6])
        assert np.allclose(GaussianError(0.0).perturb(d, rng), d)

    def test_gaussian_spread(self, rng):
        d = np.full(5000, 0.5)
        out = GaussianError(0.1).perturb(d, rng)
        assert out.std() == pytest.approx(0.1, rel=0.15)

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            UniformAbsoluteError(-0.1)
        with pytest.raises(ValueError):
            UniformRelativeError(-0.1)
        with pytest.raises(ValueError):
            GaussianError(-0.1)

    def test_describe_strings(self):
        assert "30%" in UniformAbsoluteError(0.3).describe()
        assert "no-error" == NoError().describe()


class TestMeasureDistances:
    def test_one_value_per_edge(self, small_graph, rng):
        measured = measure_distances(small_graph, NoError(), rng)
        assert len(measured) == small_graph.n_edges

    def test_symmetric_lookup(self, small_graph, rng):
        measured = measure_distances(small_graph, UniformAbsoluteError(0.1), rng)
        for u, v in small_graph.edges():
            assert measured.get(u, v) == measured.get(v, u)

    def test_exact_under_no_error(self, small_graph, rng):
        measured = measure_distances(small_graph, NoError(), rng)
        for (u, v), value in measured.items():
            assert value == pytest.approx(small_graph.distance(u, v))

    def test_non_edge_raises(self, small_graph, rng):
        measured = measure_distances(small_graph, NoError(), rng)
        with pytest.raises(KeyError):
            measured.get(0, 3)  # diagonal pair, out of range

    def test_contains(self, small_graph, rng):
        measured = measure_distances(small_graph, NoError(), rng)
        assert (0, 1) in measured
        assert (1, 0) in measured
        assert (0, 3) not in measured

    def test_empty_graph(self, rng):
        g = NetworkGraph(np.zeros((0, 3)))
        assert len(measure_distances(g, NoError(), rng)) == 0

    def test_deterministic_per_rng_seed(self, small_graph):
        m1 = measure_distances(
            small_graph, UniformAbsoluteError(0.2), np.random.default_rng(9)
        )
        m2 = measure_distances(
            small_graph, UniformAbsoluteError(0.2), np.random.default_rng(9)
        )
        assert dict(m1.items()) == dict(m2.items())
