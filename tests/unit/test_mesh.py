"""Unit tests for the TriangularMesh data structure."""

import pytest

from repro.surface.mesh import TriangularMesh, edge_key


def tetrahedron_mesh():
    """A tetrahedron over vertices 0..3: the smallest closed 2-manifold."""
    mesh = TriangularMesh(vertices=[0, 1, 2, 3])
    for u in range(4):
        for v in range(u + 1, 4):
            mesh.add_edge(u, v, hop_length=1)
    return mesh


class TestEdgeKey:
    def test_canonical_order(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_key(3, 3)


class TestMeshBasics:
    def test_vertices_deduplicated_sorted(self):
        mesh = TriangularMesh(vertices=[3, 1, 3, 2])
        assert mesh.vertices == [1, 2, 3]

    def test_edge_with_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            TriangularMesh(vertices=[0, 1], edges={(0, 5)})

    def test_add_remove_edge(self):
        mesh = TriangularMesh(vertices=[0, 1, 2])
        mesh.add_edge(2, 0, path=[2, 7, 0])
        assert mesh.has_edge(0, 2)
        assert mesh.paths[(0, 2)] == [2, 7, 0]
        assert mesh.hop_lengths[(0, 2)] == 2
        mesh.remove_edge(0, 2)
        assert not mesh.has_edge(0, 2)
        assert (0, 2) not in mesh.paths

    def test_add_edge_idempotent(self):
        mesh = TriangularMesh(vertices=[0, 1])
        mesh.add_edge(0, 1)
        mesh.add_edge(1, 0)
        assert len(mesh.edges) == 1


class TestTopology:
    def test_tetrahedron_triangles(self):
        mesh = tetrahedron_mesh()
        assert len(mesh.triangles()) == 4

    def test_tetrahedron_is_manifold_chi_2(self):
        mesh = tetrahedron_mesh()
        assert mesh.is_two_manifold()
        assert mesh.euler_characteristic() == 2
        assert mesh.genus() == 0

    def test_single_triangle_not_manifold(self):
        mesh = TriangularMesh(vertices=[0, 1, 2])
        for u, v in ((0, 1), (1, 2), (0, 2)):
            mesh.add_edge(u, v)
        assert not mesh.is_two_manifold()  # each edge has only one face
        counts = mesh.edge_face_counts()
        assert all(c == 1 for c in counts.values())

    def test_edges_with_face_count(self):
        mesh = tetrahedron_mesh()
        assert mesh.edges_with_face_count(2) == sorted(mesh.edges)
        assert mesh.edges_with_face_count(3) == []

    def test_saturated_edge_detected(self):
        """Tetrahedron plus an apex over one edge: that edge gets 3 faces."""
        mesh = tetrahedron_mesh()
        mesh.vertices.append(4)
        mesh.vertices.sort()
        mesh.add_edge(0, 4)
        mesh.add_edge(1, 4)
        assert (0, 1) in mesh.edges_with_face_count(3)

    def test_covered_nodes_includes_paths(self):
        mesh = TriangularMesh(vertices=[0, 1])
        mesh.add_edge(0, 1, path=[0, 9, 8, 1])
        assert mesh.covered_nodes() == {0, 1, 8, 9}

    def test_empty_mesh_not_manifold(self):
        mesh = TriangularMesh(vertices=[0, 1, 2])
        assert not mesh.is_two_manifold()

    def test_summary_string(self):
        assert "2-manifold=True" in tetrahedron_mesh().summary()
