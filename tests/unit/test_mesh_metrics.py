"""Unit tests for mesh quality metrics."""

import numpy as np
import pytest

from repro.evaluation.mesh_metrics import (
    evaluate_mesh,
    point_triangle_distance,
)
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh


class TestPointTriangleDistance:
    TRI = ([0, 0, 0], [1, 0, 0], [0, 1, 0])

    def test_point_on_triangle(self):
        assert point_triangle_distance([0.2, 0.2, 0.0], *self.TRI) == pytest.approx(0.0)

    def test_point_above_interior(self):
        assert point_triangle_distance([0.2, 0.2, 0.7], *self.TRI) == pytest.approx(0.7)

    def test_point_nearest_vertex(self):
        assert point_triangle_distance([-1.0, -1.0, 0.0], *self.TRI) == pytest.approx(
            np.sqrt(2.0)
        )

    def test_point_nearest_edge(self):
        assert point_triangle_distance([0.5, -1.0, 0.0], *self.TRI) == pytest.approx(1.0)

    def test_point_beyond_hypotenuse(self):
        d = point_triangle_distance([1.0, 1.0, 0.0], *self.TRI)
        assert d == pytest.approx(np.sqrt(2) / 2)


class TestEvaluateMesh:
    def _tetra_network(self):
        positions = np.array(
            [[0, 0, 0], [1, 0, 0], [0.5, 0.9, 0], [0.5, 0.3, 0.8]], dtype=float
        )
        graph = NetworkGraph(positions, radio_range=1.5)
        truth = np.ones(4, dtype=bool)
        return Network(graph=graph, truth_boundary=truth, scenario="tetra")

    def _tetra_mesh(self):
        mesh = TriangularMesh(vertices=[0, 1, 2, 3], group=[0, 1, 2, 3])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v, hop_length=1)
        return mesh

    def test_tetrahedron_quality(self):
        net = self._tetra_network()
        quality = evaluate_mesh(net, self._tetra_mesh())
        assert quality.n_vertices == 4
        assert quality.n_edges == 6
        assert quality.n_faces == 4
        assert quality.euler_characteristic == 2
        assert quality.is_two_manifold
        assert quality.two_faced_edge_fraction == 1.0
        assert quality.covered_fraction == 1.0
        # Every group node is a mesh vertex: zero deviation.
        assert quality.mean_deviation == pytest.approx(0.0, abs=1e-9)

    def test_deviation_for_offset_node(self):
        net = self._tetra_network()
        mesh = self._tetra_mesh()
        # Add a group node away from the mesh.
        positions = np.vstack([net.graph.positions, [[5.0, 5.0, 5.0]]])
        graph = NetworkGraph(positions, radio_range=1.5)
        net2 = Network(graph=graph, truth_boundary=np.ones(5, bool), scenario="t")
        mesh.group = [0, 1, 2, 3, 4]
        quality = evaluate_mesh(net2, mesh)
        assert quality.max_deviation > 5.0
        assert quality.covered_fraction == pytest.approx(0.8)

    def test_no_faces_no_deviation(self):
        net = self._tetra_network()
        mesh = TriangularMesh(vertices=[0, 1, 2, 3], group=[0, 1, 2, 3])
        mesh.add_edge(0, 1)
        quality = evaluate_mesh(net, mesh)
        assert quality.mean_deviation is None
        assert not quality.is_two_manifold

    def test_real_sphere_mesh_quality(self, sphere_network, sphere_detection):
        from repro.surface.pipeline import SurfaceBuilder

        meshes = SurfaceBuilder().build(
            sphere_network.graph, sphere_detection.groups
        )
        assert meshes
        quality = evaluate_mesh(sphere_network, meshes[0])
        assert quality.two_faced_edge_fraction > 0.9
        # Mesh deviation should be well under the landmark spacing (~k hops).
        assert quality.mean_deviation < 1.5
