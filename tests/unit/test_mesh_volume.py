"""Unit tests for mesh area and enclosed-volume estimation."""

import numpy as np
import pytest

from repro.evaluation.mesh_metrics import mesh_enclosed_volume, mesh_surface_area
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh


def _octahedron():
    """Regular octahedron with unit vertices: V=8/3... exact area/volume."""
    positions = np.array(
        [
            [1, 0, 0], [-1, 0, 0],
            [0, 1, 0], [0, -1, 0],
            [0, 0, 1], [0, 0, -1],
        ],
        dtype=float,
    )
    graph = NetworkGraph(positions, radio_range=1.6)
    network = Network(
        graph=graph, truth_boundary=np.ones(6, bool), scenario="octa"
    )
    mesh = TriangularMesh(vertices=list(range(6)), group=list(range(6)))
    for u in (0, 1):
        for v in (2, 3):
            mesh.add_edge(u, v)
    for u in (0, 1, 2, 3):
        mesh.add_edge(u, 4)
        mesh.add_edge(u, 5)
    return network, mesh


class TestSurfaceArea:
    def test_octahedron_area(self):
        network, mesh = _octahedron()
        # 8 equilateral triangles with side sqrt(2): 8 * (sqrt(3)/4) * 2.
        assert mesh_surface_area(network, mesh) == pytest.approx(4 * np.sqrt(3))

    def test_empty_mesh_zero_area(self):
        network, _ = _octahedron()
        empty = TriangularMesh(vertices=[0, 1, 2])
        assert mesh_surface_area(network, empty) == 0.0


class TestEnclosedVolume:
    def test_octahedron_volume(self):
        network, mesh = _octahedron()
        # Octahedron with vertices at distance 1: volume = 4/3.
        assert mesh_enclosed_volume(network, mesh) == pytest.approx(4.0 / 3.0)

    def test_non_manifold_returns_none(self):
        network, mesh = _octahedron()
        mesh.remove_edge(0, 2)
        assert mesh_enclosed_volume(network, mesh) is None

    def test_sphere_mesh_volume_close_to_region(
        self, sphere_network, sphere_detection
    ):
        """The mesh volume approaches the deployment sphere's volume."""
        from repro.surface.pipeline import SurfaceBuilder

        mesh = SurfaceBuilder().build(
            sphere_network.graph, sphere_detection.groups
        )[0]
        volume = mesh_enclosed_volume(sphere_network, mesh)
        if volume is None:
            pytest.skip("mesh not closed on this seed")
        true_volume = 4.0 / 3.0 * np.pi * sphere_network.scale ** 3
        # The landmark mesh is inscribed, so it under-estimates; expect
        # the right order of magnitude (>50%, <110%).
        assert 0.5 * true_volume < volume < 1.1 * true_volume
