"""Unit tests for detection metrics."""

import numpy as np
import pytest

from repro.core.pipeline import BoundaryDetectionResult
from repro.evaluation.metrics import (
    DetectionStats,
    distribution_percentages,
    evaluate_detection,
    hop_distribution,
    mistaken_hop_distribution,
    missing_hop_distribution,
)
from repro.network.generator import Network
from repro.network.graph import NetworkGraph


@pytest.fixture
def toy_network():
    """A 6-chain; nodes 0 and 5 are ground-truth boundary."""
    positions = np.array([[0.9 * i, 0, 0] for i in range(6)])
    graph = NetworkGraph(positions, radio_range=1.0)
    truth = np.array([True, False, False, False, False, True])
    return Network(graph=graph, truth_boundary=truth, scenario="toy")


def _result(boundary):
    boundary = set(boundary)
    return BoundaryDetectionResult(
        candidates=boundary, boundary=boundary, groups=[sorted(boundary)]
    )


class TestDetectionStats:
    def test_perfect_detection(self, toy_network):
        stats = evaluate_detection(toy_network, _result({0, 5}))
        assert stats.n_found == 2
        assert stats.n_correct == 2
        assert stats.n_mistaken == 0
        assert stats.n_missing == 0
        assert stats.correct_pct == 1.0

    def test_mistaken_and_missing(self, toy_network):
        stats = evaluate_detection(toy_network, _result({0, 1}))
        assert stats.n_correct == 1
        assert stats.n_mistaken == 1
        assert stats.n_missing == 1
        assert stats.missing_pct == pytest.approx(0.5)
        assert stats.mistaken_pct == pytest.approx(0.5)

    def test_zero_truth_percentages(self):
        stats = DetectionStats(0, 0, 0, 0, 0)
        assert stats.found_pct == 0.0
        assert stats.correct_pct == 0.0

    def test_as_row(self, toy_network):
        assert "found=2" in evaluate_detection(toy_network, _result({0, 5})).as_row()


class TestHopDistribution:
    def test_buckets(self, toy_network):
        # Distances from {1, 2, 3} to target {0}: 1, 2, 3 hops.
        buckets = hop_distribution(toy_network.graph, [1, 2, 3], [0])
        assert buckets[1] == 1
        assert buckets[2] == 1
        assert buckets[3] == 1

    def test_overflow_bucket(self, toy_network):
        buckets = hop_distribution(toy_network.graph, [5], [0], max_bucket=3)
        assert buckets[4] == 1  # 5 hops away -> overflow

    def test_self_in_targets_bucket_zero(self, toy_network):
        buckets = hop_distribution(toy_network.graph, [0], [0])
        assert buckets[0] == 1

    def test_no_targets_all_overflow(self, toy_network):
        buckets = hop_distribution(toy_network.graph, [1, 2], [])
        assert buckets[4] == 2

    def test_empty_sources(self, toy_network):
        buckets = hop_distribution(toy_network.graph, [], [0])
        assert sum(buckets.values()) == 0


class TestNamedDistributions:
    def test_mistaken_distribution(self, toy_network):
        result = _result({0, 1, 5})  # node 1 is mistaken
        buckets = mistaken_hop_distribution(toy_network, result)
        assert buckets[1] == 1
        assert sum(buckets.values()) == 1

    def test_missing_distribution(self, toy_network):
        result = _result({0})  # node 5 missing, correct = {0}
        buckets = missing_hop_distribution(toy_network, result)
        assert buckets[4] == 1  # 5 hops from node 0 -> overflow bucket

    def test_percentages(self):
        assert distribution_percentages({1: 3, 2: 1}) == {1: 0.75, 2: 0.25}
        assert distribution_percentages({1: 0}) == {1: 0.0}


class TestRealNetworkInvariants:
    def test_identity_decomposition(self, sphere_network, sphere_detection):
        stats = evaluate_detection(sphere_network, sphere_detection)
        assert stats.n_found == stats.n_correct + stats.n_mistaken
        assert stats.n_truth == stats.n_correct + stats.n_missing

    def test_mistaken_nodes_close_to_boundary(
        self, sphere_network, sphere_detection
    ):
        """Paper claim: mistaken nodes sit within ~2 hops of the boundary."""
        buckets = mistaken_hop_distribution(sphere_network, sphere_detection)
        total = sum(buckets.values())
        if total:
            near = buckets[1] + buckets[2]
            assert near / total > 0.9
