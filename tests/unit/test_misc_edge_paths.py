"""Remaining small code paths: empty profiles, empty stats, misc reprs."""

import numpy as np

from repro.core.ubf import balls_tested_profile, candidates_from_outcomes
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.network.stats import compute_network_stats
from repro.shapes.csg import Difference
from repro.shapes.pipe import BentPipe
from repro.shapes.solids import Sphere, Torus
from repro.shapes.terrain import UnderwaterTerrain


class TestEmptyProfiles:
    def test_balls_tested_profile_empty(self):
        profile = balls_tested_profile([])
        assert profile["mean_balls_tested"] == 0.0
        assert profile["max_balls_tested"] == 0.0
        assert profile["mean_degree"] == 0.0

    def test_candidates_from_empty(self):
        assert candidates_from_outcomes([]) == set()


class TestEmptyNetworkStats:
    def test_zero_node_network(self):
        graph = NetworkGraph(np.empty((0, 3)))
        network = Network(
            graph=graph,
            truth_boundary=np.zeros(0, dtype=bool),
            scenario="empty",
        )
        stats = compute_network_stats(network)
        assert stats.n_nodes == 0
        assert stats.avg_degree == 0.0
        assert stats.connected  # vacuously


class TestReprs:
    def test_shape_reprs_mention_parameters(self):
        assert "radius=1.0" in repr(Sphere(radius=1.0))
        assert "major=2.0" in repr(Torus(major=2.0, minor=0.5))
        assert "bend_radius=1.0" in repr(BentPipe())
        assert "depth=0.8" in repr(UnderwaterTerrain())
        combined = Difference(Sphere(), [Sphere(radius=0.3)])
        assert "Difference" in repr(combined)


class TestNetworkSummaryEdge:
    def test_summary_with_zero_degree_nodes(self):
        positions = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
        graph = NetworkGraph(positions, radio_range=1.0)
        network = Network(
            graph=graph,
            truth_boundary=np.zeros(2, dtype=bool),
            scenario="sparse",
        )
        summary = network.summary()
        assert "sparse" in summary
        assert "min 0" in summary
