"""Unit tests for NetworkGraph."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph


@pytest.fixture
def chain_graph():
    """Five nodes on a line, spacing 0.9 (each adjacent pair connected)."""
    positions = np.array([[0.9 * i, 0.0, 0.0] for i in range(5)])
    return NetworkGraph(positions, radio_range=1.0)


@pytest.fixture
def two_cluster_graph():
    """Two separated triangles (disconnected graph)."""
    a = np.array([[0, 0, 0], [0.5, 0, 0], [0, 0.5, 0]], dtype=float)
    b = a + np.array([10.0, 0, 0])
    return NetworkGraph(np.vstack([a, b]), radio_range=1.0)


class TestConstruction:
    def test_adjacency_from_positions(self, chain_graph):
        assert list(chain_graph.neighbors(0)) == [1]
        assert list(chain_graph.neighbors(2)) == [1, 3]

    def test_explicit_adjacency_roundtrip(self):
        positions = np.zeros((3, 3))
        g = NetworkGraph(positions, adjacency=[[1], [0, 2], [1]])
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_adjacency_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            NetworkGraph(np.zeros((3, 3)), adjacency=[[1], [0]])

    def test_invalid_radio_range(self):
        with pytest.raises(ValueError):
            NetworkGraph(np.zeros((1, 3)), radio_range=0.0)

    def test_positions_read_only(self, chain_graph):
        with pytest.raises(ValueError):
            chain_graph.positions[0, 0] = 5.0


class TestBasicQueries:
    def test_degrees(self, chain_graph):
        assert chain_graph.degrees().tolist() == [1, 2, 2, 2, 1]

    def test_edges_and_count(self, chain_graph):
        assert list(chain_graph.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert chain_graph.n_edges == 4

    def test_distance(self, chain_graph):
        assert chain_graph.distance(0, 2) == pytest.approx(1.8)

    def test_len(self, chain_graph):
        assert len(chain_graph) == 5


class TestBFS:
    def test_hops_from_single_source(self, chain_graph):
        hops = chain_graph.bfs_hops([0])
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_hops_multi_source(self, chain_graph):
        hops = chain_graph.bfs_hops([0, 4])
        assert hops[2] == 2
        assert hops[1] == 1
        assert hops[3] == 1

    def test_max_hops_cutoff(self, chain_graph):
        hops = chain_graph.bfs_hops([0], max_hops=2)
        assert set(hops) == {0, 1, 2}

    def test_within_restriction(self, chain_graph):
        hops = chain_graph.bfs_hops([0], within={0, 1, 3, 4})
        assert set(hops) == {0, 1}  # node 2 missing breaks the chain

    def test_sources_outside_within_ignored(self, chain_graph):
        hops = chain_graph.bfs_hops([2], within={0, 1})
        assert hops == {}


class TestShortestPath:
    def test_trivial(self, chain_graph):
        assert chain_graph.shortest_path(2, 2) == [2]

    def test_chain_path(self, chain_graph):
        assert chain_graph.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_unreachable_returns_none(self, two_cluster_graph):
        assert two_cluster_graph.shortest_path(0, 3) is None

    def test_within_restriction(self, chain_graph):
        assert chain_graph.shortest_path(0, 3, within={0, 1, 3}) is None

    def test_lowest_id_tiebreak(self):
        """Diamond 0-1-3, 0-2-3: the path through node 1 must win."""
        positions = np.array(
            [[0, 0, 0], [0.9, 0.3, 0], [0.9, -0.3, 0], [1.8, 0, 0]], dtype=float
        )
        g = NetworkGraph(positions, radio_range=1.0)
        assert g.shortest_path(0, 3) == [0, 1, 3]


class TestComponents:
    def test_connected_graph_single_component(self, chain_graph):
        assert chain_graph.is_connected()
        assert chain_graph.connected_components() == [[0, 1, 2, 3, 4]]

    def test_disconnected_components(self, two_cluster_graph):
        assert not two_cluster_graph.is_connected()
        comps = two_cluster_graph.connected_components()
        assert comps == [[0, 1, 2], [3, 4, 5]]

    def test_within_components(self, chain_graph):
        comps = chain_graph.connected_components(within={0, 1, 3, 4})
        assert comps == [[0, 1], [3, 4]]

    def test_empty_graph_connected(self):
        assert NetworkGraph(np.zeros((0, 3))).is_connected()


class TestExports:
    def test_induced_adjacency(self, chain_graph):
        induced = chain_graph.induced_adjacency({1, 2, 4})
        assert induced == {1: [2], 2: [1], 4: []}

    def test_to_networkx(self, chain_graph):
        g = chain_graph.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
        assert g.nodes[0]["pos"] == (0.0, 0.0, 0.0)
