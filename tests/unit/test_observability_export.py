"""Unit tests for JSONL trace export, validation, and parsing."""

import json

import pytest

from repro.observability.export import (
    TRACE_FORMAT_VERSION,
    load_trace,
    parse_trace,
    render_trace_tree,
    trace_lines,
    validate_trace_lines,
    write_trace,
)
from repro.observability.tracer import TickClock, Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=TickClock())
    with tracer.span("detect", n_nodes=10) as root:
        with tracer.span("ubf") as ubf:
            with tracer.span("ubf.shard", shard_index=0):
                pass
            ubf.set("n_candidates", 4)
        with tracer.span("iff"):
            tracer.event("demoted", node=3)
        root.set("n_boundary", 3)
    return tracer


class TestTraceLines:
    def test_header_first(self):
        lines = trace_lines(_sample_tracer().roots)
        header = json.loads(lines[0])
        assert header == {"kind": "trace", "format_version": TRACE_FORMAT_VERSION}

    def test_dfs_preorder_ids(self):
        lines = trace_lines(_sample_tracer().roots)
        spans = [json.loads(line) for line in lines[1:]]
        assert [s["name"] for s in spans] == ["detect", "ubf", "ubf.shard", "iff"]
        assert [s["span_id"] for s in spans] == [1, 2, 3, 4]
        assert [s["parent_id"] for s in spans] == [None, 1, 2, 1]

    def test_serialization_is_deterministic(self):
        assert trace_lines(_sample_tracer().roots) == trace_lines(
            _sample_tracer().roots
        )

    def test_open_span_exports_zero_duration(self):
        tracer = Tracer(clock=TickClock())
        ctx = tracer.span("open")
        ctx.__enter__()  # never closed
        (span_line,) = trace_lines(tracer.roots)[1:]
        doc = json.loads(span_line)
        assert doc["duration"] == 0.0
        assert doc["end"] == doc["start"]


class TestRoundTrip:
    def test_lines_parse_back_to_identical_lines(self):
        lines = trace_lines(_sample_tracer().roots)
        assert trace_lines(parse_trace(lines)) == lines

    def test_write_then_load(self, tmp_path):
        tracer = _sample_tracer()
        path = write_trace(tracer.roots, tmp_path / "trace.jsonl")
        roots = load_trace(path)
        assert trace_lines(roots) == trace_lines(tracer.roots)

    def test_parse_rejects_unknown_parent(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[2])
        doc["parent_id"] = 99
        lines[2] = json.dumps(doc)
        with pytest.raises(ValueError, match="unknown parent_id"):
            parse_trace(lines)


class TestValidation:
    def test_valid_trace_has_no_findings(self):
        assert validate_trace_lines(trace_lines(_sample_tracer().roots)) == []

    def test_empty_input(self):
        assert validate_trace_lines([]) == ["empty trace: missing header line"]

    def test_invalid_json(self):
        lines = trace_lines(_sample_tracer().roots)
        lines[1] = "{not json"
        assert any("invalid JSON" in e for e in validate_trace_lines(lines))

    def test_bad_header_kind(self):
        lines = trace_lines(_sample_tracer().roots)
        lines[0] = json.dumps({"kind": "spans", "format_version": 1})
        assert any("'kind' must be 'trace'" in e for e in validate_trace_lines(lines))

    def test_unsupported_version(self):
        lines = trace_lines(_sample_tracer().roots)
        lines[0] = json.dumps({"kind": "trace", "format_version": 99})
        assert any("format_version" in e for e in validate_trace_lines(lines))

    def test_missing_key(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        del doc["duration"]
        lines[1] = json.dumps(doc)
        assert any("missing required key 'duration'" in e
                   for e in validate_trace_lines(lines))

    def test_wrong_type(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        doc["attrs"] = []
        lines[1] = json.dumps(doc)
        assert any("wrong type" in e for e in validate_trace_lines(lines))

    def test_bool_is_not_a_number(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        doc["start"] = True  # bool is an int subclass; schema rejects it
        lines[1] = json.dumps(doc)
        assert any("wrong type" in e for e in validate_trace_lines(lines))

    def test_span_id_out_of_sequence(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        doc["span_id"] = 5
        lines[1] = json.dumps(doc)
        assert any("out of sequence" in e for e in validate_trace_lines(lines))

    def test_parent_must_precede(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[2])
        doc["parent_id"] = 4  # refers to a later span
        lines[2] = json.dumps(doc)
        assert any("does not refer to an earlier span" in e
                   for e in validate_trace_lines(lines))

    def test_end_before_start(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        doc["start"], doc["end"] = doc["end"], doc["start"]
        lines[1] = json.dumps(doc)
        errors = validate_trace_lines(lines)
        assert any("ends" in e and "before it starts" in e for e in errors)

    def test_duration_mismatch(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[1])
        doc["duration"] = doc["duration"] + 1.0
        lines[1] = json.dumps(doc)
        assert any("duration does not equal" in e
                   for e in validate_trace_lines(lines))

    def test_event_without_name(self):
        lines = trace_lines(_sample_tracer().roots)
        doc = json.loads(lines[4])
        doc["events"] = [{"node": 3}]
        lines[4] = json.dumps(doc)
        assert any("events must be objects with a 'name' key" in e
                   for e in validate_trace_lines(lines))

    def test_load_trace_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace", "format_version": 99}\n')
        with pytest.raises(ValueError, match="invalid trace file"):
            load_trace(path)


class TestRenderTree:
    def test_tree_shows_nesting_and_events(self):
        text = render_trace_tree(_sample_tracer().roots)
        lines = text.splitlines()
        assert lines[0].startswith("detect")
        assert any(line.startswith("  ubf") for line in lines)
        assert any(line.startswith("    ubf.shard") for line in lines)
        assert any("! demoted" in line for line in lines)
        assert "n_nodes=10" in text

    def test_attr_overflow_is_elided(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("busy", a=1, b=2, c=3, d=4, e=5, f=6):
            pass
        assert "(+2)" in render_trace_tree(tracer.roots)
