"""Unit tests for the metrics registry and its duck-typed absorbers."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_simulation,
    record_surface_build,
    record_ubf_outcomes,
)


class TestCounter:
    def test_increments(self):
        c = Counter("work")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("work").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("size")
        assert g.value is None
        g.set(3)
        g.set(7)
        assert g.value == 7


class TestHistogram:
    def test_empty_summary(self):
        assert Histogram("h").summary()["count"] == 0

    def test_summary_statistics(self):
        h = Histogram("h")
        h.observe_many([5, 1, 3, 2, 4])
        s = h.summary()
        assert s["count"] == 5
        assert s["sum"] == 15
        assert (s["min"], s["max"]) == (1, 5)
        assert s["mean"] == 3.0
        assert s["p50"] == 3
        assert s["p95"] == 5

    def test_single_value(self):
        h = Histogram("h")
        h.observe(42)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["min"] == s["max"] == 42


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_as_dict_is_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.size").set(9)
        reg.histogram("m.dist").observe(1)
        snap = reg.as_dict()
        assert snap["counters"] == {"z.count": 2}
        assert snap["gauges"] == {"a.size": 9}
        assert snap["histograms"]["m.dist"]["count"] == 1
        json.dumps(snap)  # must serialize without custom encoders

    def test_as_dict_snapshots_are_equal_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        a.counter("y").inc()
        b.counter("y").inc()
        b.counter("x").inc()
        assert a.as_dict() == b.as_dict()


class TestAbsorbers:
    def test_record_ubf_outcomes(self, sphere_network):
        from repro.core.ubf import run_ubf

        outcomes = run_ubf(sphere_network, nodes=range(50))
        reg = MetricsRegistry()
        record_ubf_outcomes(reg, outcomes)
        snap = reg.as_dict()
        assert snap["counters"]["ubf.nodes_tested"] == 50
        assert snap["counters"]["ubf.candidates"] == sum(
            1 for o in outcomes if o.is_candidate
        )
        assert snap["counters"]["ubf.balls_tested"] == sum(
            o.balls_tested for o in outcomes
        )
        assert snap["histograms"]["ubf.neighborhood_size"]["count"] == 50

    def test_record_simulation(self):
        from repro.runtime.simulator import SimulationResult

        result = SimulationResult(
            states={}, rounds=7, messages_sent=40, quiesced=False,
            messages_dropped=3, messages_duplicated=1, timers_fired=2,
        )
        reg = MetricsRegistry()
        record_simulation(reg, result)
        record_simulation(reg, result)
        snap = reg.as_dict()
        assert snap["counters"]["sim.runs"] == 2
        assert snap["counters"]["sim.messages_sent"] == 80
        assert snap["counters"]["sim.messages_dropped"] == 6
        assert snap["counters"]["sim.non_quiescent_runs"] == 2
        assert snap["histograms"]["sim.rounds"]["p50"] == 7

    def test_record_simulation_prefix(self):
        from repro.runtime.simulator import SimulationResult

        result = SimulationResult(
            states={}, rounds=1, messages_sent=2, quiesced=True
        )
        reg = MetricsRegistry()
        record_simulation(reg, result, prefix="iff")
        assert "iff.messages_sent" in reg
        assert "sim.messages_sent" not in reg

    def test_record_surface_build(self, sphere_network, sphere_detection):
        from repro.surface.pipeline import SurfaceBuilder

        record = SurfaceBuilder().build_one(
            sphere_network.graph, sphere_detection.groups[0]
        )
        assert record is not None
        reg = MetricsRegistry()
        record_surface_build(reg, record)
        snap = reg.as_dict()
        assert snap["counters"]["surface.meshes_built"] == 1
        assert snap["histograms"]["surface.landmarks"]["min"] >= 4
        assert snap["counters"]["surface.cdg_edges"] == len(record.cdg_edges)
