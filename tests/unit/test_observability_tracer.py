"""Unit tests for the span tracer (nesting, no-op default, determinism)."""

import pytest

from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TickClock,
    Tracer,
    config_snapshot,
    ensure_tracer,
)


class TestTickClock:
    def test_monotone_unit_steps(self):
        clock = TickClock()
        assert [clock() for _ in range(4)] == [1.0, 2.0, 3.0, 4.0]

    def test_independent_instances(self):
        a, b = TickClock(), TickClock()
        a()
        a()
        assert b() == 1.0


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert not tracer.current

    def test_tick_clock_timings_are_deterministic(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        # outer opens at tick 1, inner spans ticks 2-3, outer closes at 4.
        assert (outer.start, outer.end) == (1.0, 4.0)
        assert (inner.start, inner.end) == (2.0, 3.0)
        assert outer.duration == 3.0

    def test_sibling_roots(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_attrs_and_events(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("stage", n=3) as span:
            span.set("outcome", "ok")
            span.set_many({"a": 1, "b": 2})
            tracer.event("milestone", step=1)
        assert span.attrs == {"n": 3, "outcome": "ok", "a": 1, "b": 2}
        assert span.events == [{"name": "milestone", "step": 1}]

    def test_event_outside_any_span_is_dropped(self):
        tracer = Tracer(clock=TickClock())
        tracer.event("orphan")
        assert tracer.roots == []

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(clock=TickClock())
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None

    def test_current_tracks_innermost(self):
        tracer = Tracer(clock=TickClock())
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestAttach:
    def test_attach_grafts_under_open_span(self):
        tracer = Tracer(clock=TickClock())
        doc = Span("shard", 1.0)
        doc.end = 2.0
        with tracer.span("parent") as parent:
            tracer.attach([doc.to_dict()])
        assert [c.name for c in parent.children] == ["shard"]

    def test_attach_without_open_span_adds_roots(self):
        tracer = Tracer(clock=TickClock())
        doc = Span("orphan", 1.0)
        doc.end = 2.0
        tracer.attach([doc.to_dict()])
        assert [s.name for s in tracer.roots] == ["orphan"]

    def test_attach_preserves_order(self):
        tracer = Tracer(clock=TickClock())
        docs = []
        for i in range(3):
            span = Span(f"shard{i}", float(i))
            span.end = float(i) + 1.0
            docs.append(span.to_dict())
        with tracer.span("parent") as parent:
            tracer.attach(docs)
        assert [c.name for c in parent.children] == ["shard0", "shard1", "shard2"]


class TestSpanDictRoundTrip:
    def test_to_from_dict(self):
        span = Span("root", 1.0)
        span.end = 5.0
        span.set("k", 1)
        span.event("e", detail="x")
        child = Span("child", 2.0)
        child.end = 3.0
        span.children.append(child)

        rebuilt = Span.from_dict(span.to_dict())
        assert rebuilt.to_dict() == span.to_dict()


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer

    def test_span_returns_shared_context(self):
        a = NULL_TRACER.span("x", big_attr=list(range(100)))
        b = NULL_TRACER.span("y")
        assert a is b  # one preallocated no-op context manager

    def test_span_writes_are_inert(self):
        with NULL_TRACER.span("stage") as span:
            span.set("k", 1)
            span.set_many({"a": 2})
            span.event("e")
        assert span.attrs == {}
        assert span.events == []
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current is None

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("stage"):
                raise RuntimeError("boom")

    def test_attach_is_noop(self):
        NullTracer().attach([{"name": "x", "start": 0.0, "end": 1.0}])
        assert NULL_TRACER.roots == []


class TestConfigSnapshot:
    def test_dataclasses_become_dicts(self):
        from repro.core.config import DetectorConfig

        snap = config_snapshot(DetectorConfig())
        assert snap["localization"] == "auto"
        assert snap["ubf"]["epsilon"] == 1e-3
        # Non-primitive leaves degrade to repr, never to object graphs.
        assert isinstance(snap["error_model"], (dict, str))

    def test_primitives_and_containers(self):
        assert config_snapshot({"a": (1, 2), "b": None}) == {"a": [1, 2], "b": None}

    def test_opaque_objects_become_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert config_snapshot(Opaque()) == "<opaque>"
