"""Unit tests for surface partitioning."""

import numpy as np
import pytest

from repro.applications.partition import balanced_partition, cell_partition
from repro.network.graph import NetworkGraph
from repro.surface.landmarks import elect_landmarks


@pytest.fixture
def ring_graph():
    n = 24
    pts = [
        [np.cos(2 * np.pi * i / n) * 3.2, np.sin(2 * np.pi * i / n) * 3.2, 0.0]
        for i in range(n)
    ]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestCellPartition:
    def test_covers_group_disjointly(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        partition = cell_partition(ring_graph, group, landmarks)
        flat = [n for p in partition.patches for n in p]
        assert sorted(flat) == group

    def test_heads_are_landmarks(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        partition = cell_partition(ring_graph, group, landmarks)
        assert partition.heads == sorted(landmarks)

    def test_patches_contiguous(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        partition = cell_partition(ring_graph, group, landmarks)
        for patch in partition.patches:
            hops = ring_graph.bfs_hops([patch[0]], within=set(patch))
            assert set(hops) == set(patch)

    def test_patch_of_lookup(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 3)
        partition = cell_partition(ring_graph, group, landmarks)
        lookup = partition.patch_of()
        for idx, patch in enumerate(partition.patches):
            for node in patch:
                assert lookup[node] == idx


class TestBalancedPartition:
    def test_reaches_requested_count(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 2)
        partition = balanced_partition(ring_graph, group, landmarks, 3)
        assert len(partition.patches) == 3

    def test_patches_stay_contiguous(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 2)
        partition = balanced_partition(ring_graph, group, landmarks, 3)
        for patch in partition.patches:
            hops = ring_graph.bfs_hops([patch[0]], within=set(patch))
            assert set(hops) == set(patch)

    def test_rough_balance_on_ring(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 2)
        partition = balanced_partition(ring_graph, group, landmarks, 4)
        assert max(partition.sizes) <= 3 * min(partition.sizes)

    def test_invalid_counts(self, ring_graph):
        group = list(range(24))
        landmarks = elect_landmarks(ring_graph, group, 2)
        with pytest.raises(ValueError):
            balanced_partition(ring_graph, group, landmarks, 0)
        with pytest.raises(ValueError):
            balanced_partition(ring_graph, group, landmarks, 99)

    def test_on_real_boundary(self, sphere_network, sphere_detection):
        group = sphere_detection.groups[0]
        landmarks = elect_landmarks(sphere_network.graph, group, 4)
        partition = balanced_partition(sphere_network.graph, group, landmarks, 4)
        assert len(partition.patches) == 4
        flat = [n for p in partition.patches for n in p]
        assert sorted(flat) == sorted(group)
