"""Pure-logic tests for partition merge bookkeeping."""

import numpy as np
import pytest

from repro.applications.partition import SurfacePartition, balanced_partition
from repro.network.graph import NetworkGraph


class TestSurfacePartitionHelpers:
    def test_sizes(self):
        partition = SurfacePartition(patches=[[1, 2], [3]], heads=[1, 3])
        assert partition.sizes == [2, 1]

    def test_patch_of_disjoint(self):
        partition = SurfacePartition(patches=[[1, 2], [3, 4]], heads=[1, 3])
        lookup = partition.patch_of()
        assert lookup == {1: 0, 2: 0, 3: 1, 4: 1}


class TestBalancedMergeOnChain:
    def test_merge_to_one_patch(self):
        positions = np.array([[0.9 * i, 0, 0] for i in range(9)])
        graph = NetworkGraph(positions, radio_range=1.0)
        group = list(range(9))
        landmarks = [0, 4, 8]
        partition = balanced_partition(graph, group, landmarks, 1)
        assert len(partition.patches) == 1
        assert sorted(partition.patches[0]) == group
        assert partition.heads == [0]

    def test_head_is_min_of_merged(self):
        positions = np.array([[0.9 * i, 0, 0] for i in range(9)])
        graph = NetworkGraph(positions, radio_range=1.0)
        partition = balanced_partition(graph, range(9), [0, 4, 8], 2)
        assert all(h == min(p) or h in p for h, p in zip(partition.heads, partition.patches))
