"""Unit tests for radio link models."""

import numpy as np
import pytest

from repro.network.radio import QuasiUnitDiskModel, UnitDiskModel, build_adjacency


class TestUnitDisk:
    def test_threshold_at_one(self, rng):
        model = UnitDiskModel()
        d = np.array([0.2, 0.99, 1.0, 1.01])
        assert model.link_mask(d, rng).tolist() == [True, True, True, False]


class TestQuasiUnitDisk:
    def test_certain_below_alpha(self, rng):
        model = QuasiUnitDiskModel(alpha=0.7)
        d = np.full(500, 0.6)
        assert model.link_mask(d, rng).all()

    def test_never_beyond_one(self, rng):
        model = QuasiUnitDiskModel(alpha=0.7)
        d = np.full(500, 1.05)
        assert not model.link_mask(d, rng).any()

    def test_gray_zone_probability_interpolates(self):
        model = QuasiUnitDiskModel(alpha=0.5)
        rng = np.random.default_rng(0)
        # At d = 0.75, probability = (1 - 0.75) / 0.5 = 0.5.
        d = np.full(20_000, 0.75)
        rate = model.link_mask(d, rng).mean()
        assert rate == pytest.approx(0.5, abs=0.02)

    def test_alpha_one_is_unit_disk(self, rng):
        model = QuasiUnitDiskModel(alpha=1.0)
        d = np.array([0.5, 0.999, 1.001])
        assert model.link_mask(d, rng).tolist() == [True, True, False]

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            QuasiUnitDiskModel(alpha=0.0)
        with pytest.raises(ValueError):
            QuasiUnitDiskModel(alpha=1.2)

    def test_describe(self):
        assert "0.7" in QuasiUnitDiskModel(alpha=0.7).describe()


class TestBuildAdjacency:
    def test_unit_disk_matches_graph_construction(self, rng):
        from repro.network.graph import NetworkGraph

        pts = rng.uniform(0, 3, size=(50, 3))
        adjacency = build_adjacency(pts, UnitDiskModel(), rng)
        graph = NetworkGraph(pts, radio_range=1.0)
        for i in range(50):
            assert sorted(adjacency[i]) == graph.neighbors(i).tolist()

    def test_symmetric(self, rng):
        pts = rng.uniform(0, 3, size=(60, 3))
        adjacency = build_adjacency(pts, QuasiUnitDiskModel(0.6), rng)
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                assert u in adjacency[v]

    def test_quasi_udg_subset_of_unit_disk(self, rng):
        pts = rng.uniform(0, 3, size=(60, 3))
        quasi = build_adjacency(pts, QuasiUnitDiskModel(0.6), np.random.default_rng(1))
        full = build_adjacency(pts, UnitDiskModel(), np.random.default_rng(1))
        for u in range(60):
            assert set(quasi[u]) <= set(full[u])

    def test_empty_positions(self, rng):
        assert build_adjacency(np.empty((0, 3)), UnitDiskModel(), rng) == []


class TestGeneratorIntegration:
    def test_quasi_udg_deployment(self):
        from repro import DeploymentConfig, generate_network, sphere_scenario

        config = DeploymentConfig(
            n_surface=200,
            n_interior=400,
            target_degree=30,
            seed=2,
            quasi_udg_alpha=0.75,
        )
        net = generate_network(sphere_scenario(), config, scenario="quasi")
        # Gray-zone pruning lowers the degree vs the pure unit-disk run.
        full = generate_network(
            sphere_scenario(),
            DeploymentConfig(
                n_surface=200, n_interior=400, target_degree=30, seed=2
            ),
        )
        assert net.graph.degrees().mean() < full.graph.degrees().mean()
        # All surviving edges respect the max range.
        for u, v in net.graph.edges():
            assert net.graph.distance(u, v) <= 1.0 + 1e-9
