"""Unit tests for the ack/retransmit reliable-delivery wrapper."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.faults import CrashSpec, DelaySpec, FaultPlan
from repro.runtime.protocols import (
    MinLabelProtocol,
    ReliableProtocol,
    RetryPolicy,
    TTLFloodProtocol,
    reliable_stats,
    run_grouping_distributed,
    run_iff_distributed,
)
from repro.runtime.simulator import Simulator


@pytest.fixture
def grid_graph():
    pts = [[0.9 * x, 0.9 * y, 0.0] for x in range(6) for y in range(6)]
    return NetworkGraph(np.array(pts), radio_range=1.0)


@pytest.fixture
def chain():
    pts = np.array([[0.9 * i, 0, 0] for i in range(6)])
    return NetworkGraph(pts, radio_range=1.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(rto=0)


class TestLosslessTransparency:
    def test_states_match_raw_protocol(self, grid_graph):
        """Over a perfect channel the wrapper changes nothing observable."""
        raw = Simulator(grid_graph).run(TTLFloodProtocol(3))
        rel = Simulator(grid_graph).run(ReliableProtocol(TTLFloodProtocol(3)))
        for node in raw.states:
            assert raw.states[node]["heard"] == rel.states[node]["heard"]
        stats = reliable_stats(rel)
        assert stats.retransmissions == 0 and stats.gave_up == 0

    def test_ack_overhead_counted(self, grid_graph):
        raw = Simulator(grid_graph).run(TTLFloodProtocol(3))
        rel = Simulator(grid_graph).run(ReliableProtocol(TTLFloodProtocol(3)))
        # One ack per data message: exactly double the traffic, no retries.
        assert rel.messages_sent == 2 * raw.messages_sent


class TestLossRecovery:
    def test_exact_heard_sets_at_moderate_loss(self, grid_graph):
        """Acceptance: the wrapper restores exact heard-sets at 10% loss
        within its retry budget."""
        base = Simulator(grid_graph).run(TTLFloodProtocol(3))
        rel = Simulator(
            grid_graph,
            fault_plan=FaultPlan(loss_rate=0.1),
            rng=np.random.default_rng(1),
        ).run(ReliableProtocol(TTLFloodProtocol(3), RetryPolicy(max_retries=8)))
        for node in base.states:
            assert base.states[node]["heard"] == rel.states[node]["heard"]
        stats = reliable_stats(rel)
        assert stats.gave_up == 0
        assert stats.retransmissions > 0  # the budget was actually exercised

    def test_recovery_under_delay_and_duplication(self, grid_graph):
        base = Simulator(grid_graph).run(TTLFloodProtocol(3))
        plan = FaultPlan(
            loss_rate=0.1, duplicate_rate=0.1, delay=DelaySpec(rate=0.2, max_delay=2)
        )
        rel = Simulator(
            grid_graph, fault_plan=plan, rng=np.random.default_rng(2)
        ).run(ReliableProtocol(TTLFloodProtocol(3), RetryPolicy(max_retries=8)))
        for node in base.states:
            assert base.states[node]["heard"] == rel.states[node]["heard"]
        assert reliable_stats(rel).duplicates_suppressed > 0

    def test_min_label_recovery(self, grid_graph):
        rel = Simulator(
            grid_graph,
            fault_plan=FaultPlan(loss_rate=0.2),
            rng=np.random.default_rng(3),
        ).run(ReliableProtocol(MinLabelProtocol(), RetryPolicy(max_retries=8)))
        assert all(s["label"] == 0 for s in rel.states.values())


class TestRetryBudget:
    def test_gave_up_on_dead_link(self, chain):
        """A link that never delivers exhausts the budget and is counted."""
        plan = FaultPlan(link_loss={(0, 1): 1.0})
        policy = RetryPolicy(max_retries=2)
        result = Simulator(
            chain,
            participants={0, 1},
            fault_plan=plan,
            rng=np.random.default_rng(0),
        ).run(ReliableProtocol(TTLFloodProtocol(2), policy))
        stats = reliable_stats(result)
        assert stats.gave_up >= 1
        # Node 1 never hears node 0's flood.
        assert result.states[1]["heard"] == {1}
        assert result.quiesced  # bounded retries guarantee quiescence

    def test_retry_budget_bounded(self, chain):
        """Retransmissions per message never exceed max_retries."""
        plan = FaultPlan(loss_rate=1.0)
        policy = RetryPolicy(max_retries=3)
        result = Simulator(
            chain, fault_plan=plan, rng=np.random.default_rng(0)
        ).run(ReliableProtocol(TTLFloodProtocol(2), policy))
        stats = reliable_stats(result)
        n_data = sum(len(c) for c in [chain.neighbors(i) for i in range(6)])
        assert stats.retransmissions <= policy.max_retries * n_data
        assert stats.gave_up == n_data  # every initial broadcast abandoned
        assert result.quiesced


class TestDistributedDriversWithFaults:
    def test_run_iff_distributed_reliable_matches_ideal(self, grid_graph):
        nodes = range(grid_graph.n_nodes)
        ideal, _ = run_iff_distributed(grid_graph, nodes, theta=10, ttl=2)
        lossy, result = run_iff_distributed(
            grid_graph,
            nodes,
            theta=10,
            ttl=2,
            fault_plan=FaultPlan(loss_rate=0.1),
            retry_policy=RetryPolicy(max_retries=8),
            rng=np.random.default_rng(4),
        )
        assert lossy == ideal
        assert result.messages_dropped > 0

    def test_crashed_from_start_cannot_survive_iff(self, grid_graph):
        plan = FaultPlan(crashes=(CrashSpec(0, crash_round=0),))
        survivors, result = run_iff_distributed(
            grid_graph,
            range(grid_graph.n_nodes),
            theta=1,
            ttl=2,
            fault_plan=plan,
            rng=np.random.default_rng(0),
        )
        assert 0 not in survivors
        assert "heard" not in result.states[0]  # on_start never ran

    def test_run_grouping_distributed_omits_dead_nodes(self, chain):
        plan = FaultPlan(crashes=(CrashSpec(2, crash_round=0),))
        labels, _ = run_grouping_distributed(
            chain, range(6), fault_plan=plan, rng=np.random.default_rng(0)
        )
        assert 2 not in labels
        # The crashed node partitions the chain's label propagation.
        assert labels[0] == labels[1] == 0
        assert labels[3] == labels[4] == labels[5] == 3


class TestBackoffPolicy:
    def test_timeout_schedule(self):
        policy = RetryPolicy(rto=2, rto_backoff=2.0, rto_cap=8)
        assert [policy.timeout_for(r) for r in range(5)] == [2, 4, 8, 8, 8]

    def test_fractional_backoff_rounds_up(self):
        policy = RetryPolicy(rto=2, rto_backoff=1.5, rto_cap=64)
        # 2, 3, 4.5 -> 5, 6.75 -> 7
        assert [policy.timeout_for(r) for r in range(4)] == [2, 3, 5, 7]

    def test_default_is_fixed_rto(self):
        policy = RetryPolicy()
        assert [policy.timeout_for(r) for r in range(4)] == [policy.rto] * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(rto_backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(rto=4, rto_cap=2)

    def test_per_instance_default_policy(self):
        """Each wrapper constructs its own default policy instance."""
        a = ReliableProtocol(TTLFloodProtocol(2))
        b = ReliableProtocol(TTLFloodProtocol(2))
        assert a.policy == RetryPolicy()
        assert a.policy is not b.policy

    def test_recovery_with_backoff_under_loss(self, grid_graph):
        """Backoff still restores exact heard-sets within the budget."""
        base = Simulator(grid_graph).run(TTLFloodProtocol(3))
        rel = Simulator(
            grid_graph,
            fault_plan=FaultPlan(loss_rate=0.1),
            rng=np.random.default_rng(1),
        ).run(
            ReliableProtocol(
                TTLFloodProtocol(3),
                RetryPolicy(max_retries=8, rto_backoff=2.0, rto_cap=16),
            )
        )
        for node in base.states:
            assert base.states[node]["heard"] == rel.states[node]["heard"]
        assert reliable_stats(rel).gave_up == 0

    def test_backoff_spaces_out_retries_on_dead_link(self, chain):
        """With backoff, later retransmissions of the same message wait
        longer, so exhausting the budget takes more rounds than fixed-RTO
        while the retransmission count stays identical."""
        plan = FaultPlan(link_loss={(0, 1): 1.0})

        def run(policy):
            return Simulator(
                chain,
                participants={0, 1},
                fault_plan=plan,
                rng=np.random.default_rng(0),
            ).run(ReliableProtocol(TTLFloodProtocol(2), policy))

        fixed = run(RetryPolicy(max_retries=3, rto=2))
        backed = run(RetryPolicy(max_retries=3, rto=2, rto_backoff=2.0, rto_cap=32))
        assert (
            reliable_stats(fixed).retransmissions
            == reliable_stats(backed).retransmissions
        )
        assert reliable_stats(backed).gave_up == reliable_stats(fixed).gave_up
        assert backed.rounds > fixed.rounds
        assert backed.quiesced and fixed.quiesced

    def test_backoff_one_matches_legacy_run_exactly(self, grid_graph):
        """rto_backoff=1.0 is bit-for-bit the legacy fixed-RTO behaviour."""
        def run(policy):
            return Simulator(
                grid_graph,
                fault_plan=FaultPlan(loss_rate=0.15),
                rng=np.random.default_rng(7),
            ).run(ReliableProtocol(TTLFloodProtocol(3), policy))

        legacy = run(RetryPolicy(max_retries=6, rto=2))
        explicit = run(RetryPolicy(max_retries=6, rto=2, rto_backoff=1.0))
        assert legacy.rounds == explicit.rounds
        assert legacy.messages_sent == explicit.messages_sent
        assert reliable_stats(legacy) == reliable_stats(explicit)
        for node in legacy.states:
            assert legacy.states[node]["heard"] == explicit.states[node]["heard"]
