"""Unit tests for table rendering."""

from repro.evaluation.experiments import ErrorSweepPoint
from repro.evaluation.metrics import DetectionStats
from repro.evaluation.reporting import (
    format_table,
    render_error_sweep_counts,
    render_error_sweep_percent,
    render_mistaken_distribution,
    render_missing_distribution,
)


def _point(level):
    return ErrorSweepPoint(
        level=level,
        stats=DetectionStats(
            n_truth=100, n_found=95, n_correct=90, n_mistaken=5, n_missing=10
        ),
        mistaken_hops={0: 0, 1: 3, 2: 1, 3: 1, 4: 0},
        missing_hops={0: 0, 1: 9, 2: 1, 3: 0, 4: 0},
    )


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert out.splitlines()[0] == "x"


class TestRenderers:
    def test_counts_table(self):
        out = render_error_sweep_counts([_point(0.0), _point(0.3)])
        assert "0%" in out and "30%" in out
        assert "95" in out and "90" in out

    def test_percent_table(self):
        out = render_error_sweep_percent([_point(0.1)])
        assert "95.0%" in out
        assert "90.0%" in out

    def test_mistaken_distribution_table(self):
        out = render_mistaken_distribution([_point(0.2)])
        assert "60.0%" in out  # 3 of 5 at 1 hop

    def test_missing_distribution_table(self):
        out = render_missing_distribution([_point(0.2)])
        assert "90.0%" in out  # 9 of 10 at 1 hop
