"""Unit tests for the remaining report renderers."""

from repro.evaluation.experiments import (
    ComplexityPoint,
    MeshErrorPoint,
    ScenarioResult,
)
from repro.evaluation.metrics import DetectionStats
from repro.evaluation.mesh_metrics import MeshQuality
from repro.evaluation.reporting import (
    render_complexity,
    render_mesh_error_sweep,
    render_scenario_result,
)
from repro.network.stats import NetworkStats


def _quality(manifold=True):
    return MeshQuality(
        n_vertices=10,
        n_edges=24,
        n_faces=16,
        euler_characteristic=2,
        is_two_manifold=manifold,
        two_faced_edge_fraction=1.0 if manifold else 0.5,
        edge_face_histogram={2: 24} if manifold else {1: 12, 2: 12},
        covered_fraction=0.8,
        mean_deviation=0.3,
        max_deviation=0.9,
    )


class TestRenderComplexity:
    def test_columns_present(self):
        points = [
            ComplexityPoint(10.0, 9.1, 120.0, 300.0),
            ComplexityPoint(20.0, 18.2, 480.0, 900.0),
        ]
        out = render_complexity(points)
        assert "mean balls" in out
        assert "480" in out


class TestRenderScenario:
    def test_full_result(self):
        result = ScenarioResult(
            scenario="sphere",
            network_stats=NetworkStats(
                n_nodes=100,
                n_edges=500,
                n_truth_boundary=40,
                avg_degree=10.0,
                min_degree=4,
                max_degree=20,
                connected=True,
                avg_edge_length=0.7,
            ),
            detection=DetectionStats(40, 42, 40, 2, 0),
            group_sizes=[42],
            meshes=[_quality()],
        )
        out = render_scenario_result(result)
        assert "sphere" in out
        assert "mesh[0]" in out
        assert "manifold=True" in out


class TestRenderMeshErrorSweep:
    def test_rows_per_mesh(self):
        points = [
            MeshErrorPoint(
                level=0.0,
                detection=DetectionStats(40, 42, 40, 2, 0),
                meshes=[_quality(), _quality(manifold=False)],
            )
        ]
        out = render_mesh_error_sweep(points)
        assert out.count("0%") >= 2  # two mesh rows for the one level
        assert "100%" in out and "50%" in out

    def test_handles_missing_deviation(self):
        quality = MeshQuality(
            n_vertices=4,
            n_edges=6,
            n_faces=0,
            euler_characteristic=-2,
            is_two_manifold=False,
            two_faced_edge_fraction=0.0,
            edge_face_histogram={0: 6},
            covered_fraction=0.5,
            mean_deviation=None,
            max_deviation=None,
        )
        points = [
            MeshErrorPoint(
                level=0.2,
                detection=DetectionStats(40, 42, 40, 2, 0),
                meshes=[quality],
            )
        ]
        assert "n/a" in render_mesh_error_sweep(points)
