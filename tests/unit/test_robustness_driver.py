"""Unit tests for the fault-injection degradation experiment driver."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig, IFFConfig
from repro.evaluation.robustness import (
    RobustnessPoint,
    precision_recall_f1,
    render_robustness_table,
    run_robustness_sweep,
)
from repro.network.generator import DeploymentConfig, generate_network
from repro.runtime.protocols import RetryPolicy
from repro.shapes.library import scenario_by_name


@pytest.fixture(scope="module")
def small_sphere():
    return generate_network(
        scenario_by_name("sphere"),
        DeploymentConfig(n_surface=120, n_interior=200, target_degree=14, seed=0),
        scenario="sphere",
    )


#: theta scaled down with the deployment so lossless detection is healthy.
SMALL_CONFIG = DetectorConfig(iff=IFFConfig(theta=10, ttl=3))


class TestScores:
    def test_perfect_detection(self):
        assert precision_recall_f1({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)

    def test_disjoint_detection(self):
        p, r, f1 = precision_recall_f1({1}, {2})
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_partial(self):
        p, r, f1 = precision_recall_f1({1, 2, 3, 4}, {3, 4, 5, 6})
        assert p == 0.5 and r == 0.5 and f1 == 0.5

    def test_empty_conventions(self):
        assert precision_recall_f1(set(), set()) == (1.0, 1.0, 1.0)
        assert precision_recall_f1(set(), {1})[0] == 0.0
        assert precision_recall_f1({1}, set())[1] == 1.0


class TestSweepDriver:
    def test_grid_shape_and_order(self, small_sphere):
        points = run_robustness_sweep(
            small_sphere,
            loss_rates=(0.0, 0.3),
            crash_fractions=(0.0, 0.2),
            detector_config=SMALL_CONFIG,
            seed=0,
        )
        assert [(p.crash_fraction, p.loss_rate) for p in points] == [
            (0.0, 0.0), (0.0, 0.3), (0.2, 0.0), (0.2, 0.3),
        ]
        assert all(isinstance(p, RobustnessPoint) for p in points)
        assert all(p.quiesced for p in points)

    def test_sweep_is_seeded(self, small_sphere):
        kwargs = dict(
            loss_rates=(0.1,),
            crash_fractions=(0.1,),
            detector_config=SMALL_CONFIG,
            seed=7,
        )
        a = run_robustness_sweep(small_sphere, **kwargs)
        b = run_robustness_sweep(small_sphere, **kwargs)
        assert a == b

    def test_f1_declines_with_loss(self, small_sphere):
        """Without the reliability layer, F1 declines monotonically with
        loss.  Tiny loss rates can nudge F1 *up* by dropping borderline
        false positives below theta, so the grid starts at 0.2 where the
        degradation signal dominates the noise."""
        points = run_robustness_sweep(
            small_sphere,
            loss_rates=(0.0, 0.2, 0.45, 0.6),
            detector_config=SMALL_CONFIG,
            seed=0,
        )
        f1s = [p.f1 for p in points]
        assert f1s == sorted(f1s, reverse=True)
        assert f1s[-1] < f1s[0] - 0.05

    def test_crashes_hurt_recall(self, small_sphere):
        healthy, crashed = run_robustness_sweep(
            small_sphere,
            loss_rates=(0.0,),
            crash_fractions=(0.0, 0.3),
            detector_config=SMALL_CONFIG,
            seed=0,
        )
        assert crashed.recall < healthy.recall
        assert crashed.messages_dropped > 0

    def test_reliable_wrapper_restores_lossless_result(self, small_sphere):
        ideal, lossy = run_robustness_sweep(
            small_sphere,
            loss_rates=(0.0, 0.1),
            detector_config=SMALL_CONFIG,
            retry_policy=RetryPolicy(max_retries=8),
            seed=0,
        )
        assert lossy.n_found == ideal.n_found
        assert lossy.f1 == ideal.f1
        assert lossy.retransmissions > 0
        assert lossy.gave_up == 0

    def test_render_table(self, small_sphere):
        points = run_robustness_sweep(
            small_sphere,
            loss_rates=(0.0,),
            detector_config=SMALL_CONFIG,
            seed=0,
        )
        table = render_robustness_table(points)
        for header in ("loss", "crash", "precision", "recall", "F1", "msgs"):
            assert header in table
        assert "0%" in table
