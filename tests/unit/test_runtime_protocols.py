"""Unit tests for the Voronoi and election protocols on tiny graphs."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.protocols import (
    VoronoiCellProtocol,
    distributed_landmark_election,
    run_voronoi_distributed,
)
from repro.runtime.simulator import Simulator


@pytest.fixture
def chain():
    positions = np.array([[0.9 * i, 0, 0] for i in range(7)])
    return NetworkGraph(positions, radio_range=1.0)


class TestVoronoiProtocol:
    def test_two_landmarks_split_chain(self, chain):
        result = Simulator(chain).run(VoronoiCellProtocol([0, 6]))
        cells = {n: s["cell"] for n, s in result.states.items()}
        assert cells[0] == 0
        assert cells[1] == 0
        assert cells[2] == 0
        assert cells[3] == 0  # tie at distance 3: smaller ID wins
        assert cells[4] == 6
        assert cells[6] == 6

    def test_single_landmark_owns_all(self, chain):
        cells, _ = run_voronoi_distributed(chain, range(7), [3])
        assert all(owner == 3 for owner in cells.values())

    def test_unreachable_node_gets_none(self, chain):
        # Restrict participants so node 6 is cut off from landmark 0.
        result = Simulator(chain, participants={0, 1, 2, 6}).run(
            VoronoiCellProtocol([0])
        )
        assert result.states[6]["cell"] is None


class TestElectionProtocol:
    def test_chain_election_k2(self, chain):
        landmarks, messages = distributed_landmark_election(chain, range(7), 2)
        # Greedy k=2 on a chain: 0 suppresses 1, then 2 suppresses 3, ...
        assert landmarks == [0, 2, 4, 6]
        assert messages > 0

    def test_k_larger_than_diameter_single_landmark(self, chain):
        landmarks, _ = distributed_landmark_election(chain, range(7), 8)
        assert landmarks == [0]

    def test_subset_group(self, chain):
        landmarks, _ = distributed_landmark_election(chain, [2, 3, 4], 2)
        assert landmarks == [2, 4]
