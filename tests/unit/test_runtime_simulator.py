"""Unit tests for the message-passing simulator and basic protocols."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.protocols import MinLabelProtocol, TTLFloodProtocol
from repro.runtime.simulator import NodeContext, Protocol, Simulator


@pytest.fixture
def chain():
    positions = np.array([[0.9 * i, 0, 0] for i in range(6)])
    return NetworkGraph(positions, radio_range=1.0)


class EchoOnce(Protocol):
    """Each node broadcasts its ID once; receivers record what they heard."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["heard"] = set()
        ctx.broadcast(ctx.node)

    def on_message(self, ctx, sender, payload) -> None:
        ctx.state["heard"].add(payload)


class TestSimulatorMechanics:
    def test_one_round_delivery(self, chain):
        result = Simulator(chain).run(EchoOnce())
        assert result.rounds == 1
        assert result.quiesced
        # Each node hears exactly its neighbors.
        assert result.states[0]["heard"] == {1}
        assert result.states[2]["heard"] == {1, 3}

    def test_message_count(self, chain):
        result = Simulator(chain).run(EchoOnce())
        # Sum of degrees = 2 * edges = 10.
        assert result.messages_sent == 10

    def test_participants_filter(self, chain):
        result = Simulator(chain, participants={0, 1, 2}).run(EchoOnce())
        assert set(result.states) == {0, 1, 2}
        assert result.states[2]["heard"] == {1}  # node 3 not participating

    def test_send_to_non_neighbor_raises(self, chain):
        class BadSend(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(5, "x")

            def on_message(self, ctx, sender, payload):
                pass

        with pytest.raises(ValueError):
            Simulator(chain).run(BadSend())

    def test_round_cap(self, chain):
        class Chatter(Protocol):
            def on_start(self, ctx):
                ctx.broadcast("hi")

            def on_message(self, ctx, sender, payload):
                ctx.broadcast("hi")  # never stops

        result = Simulator(chain).run(Chatter(), max_rounds=5)
        assert result.rounds == 5
        assert not result.quiesced


class TestTTLFlood:
    def test_heard_matches_hops(self, chain):
        result = Simulator(chain).run(TTLFloodProtocol(ttl=2))
        # Node 0 hears itself, 1 (1 hop), 2 (2 hops).
        assert result.states[0]["heard"] == {0, 1, 2}
        assert result.states[3]["heard"] == {1, 2, 3, 4, 5}

    def test_ttl_one_is_neighbors_only(self, chain):
        result = Simulator(chain).run(TTLFloodProtocol(ttl=1))
        assert result.states[2]["heard"] == {1, 2, 3}

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            TTLFloodProtocol(ttl=0)


class TestMinLabel:
    def test_single_component_converges_to_zero(self, chain):
        result = Simulator(chain).run(MinLabelProtocol())
        assert all(s["label"] == 0 for s in result.states.values())

    def test_split_components(self, chain):
        result = Simulator(chain, participants={0, 1, 3, 4, 5}).run(
            MinLabelProtocol()
        )
        assert result.states[0]["label"] == 0
        assert result.states[1]["label"] == 0
        assert result.states[3]["label"] == 3
        assert result.states[5]["label"] == 3
