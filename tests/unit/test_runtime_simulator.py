"""Unit tests for the message-passing simulator and basic protocols."""

import warnings

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.faults import FaultPlan
from repro.runtime.protocols import MinLabelProtocol, TTLFloodProtocol
from repro.runtime.simulator import (
    NodeContext,
    NonQuiescentTermination,
    Protocol,
    Simulator,
)


@pytest.fixture
def chain():
    positions = np.array([[0.9 * i, 0, 0] for i in range(6)])
    return NetworkGraph(positions, radio_range=1.0)


class EchoOnce(Protocol):
    """Each node broadcasts its ID once; receivers record what they heard."""

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["heard"] = set()
        ctx.broadcast(ctx.node)

    def on_message(self, ctx, sender, payload) -> None:
        ctx.state["heard"].add(payload)


class TestSimulatorMechanics:
    def test_one_round_delivery(self, chain):
        result = Simulator(chain).run(EchoOnce())
        assert result.rounds == 1
        assert result.quiesced
        # Each node hears exactly its neighbors.
        assert result.states[0]["heard"] == {1}
        assert result.states[2]["heard"] == {1, 3}

    def test_message_count(self, chain):
        result = Simulator(chain).run(EchoOnce())
        # Sum of degrees = 2 * edges = 10.
        assert result.messages_sent == 10

    def test_participants_filter(self, chain):
        result = Simulator(chain, participants={0, 1, 2}).run(EchoOnce())
        assert set(result.states) == {0, 1, 2}
        assert result.states[2]["heard"] == {1}  # node 3 not participating

    def test_send_to_non_neighbor_raises(self, chain):
        class BadSend(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(5, "x")

            def on_message(self, ctx, sender, payload):
                pass

        with pytest.raises(ValueError):
            Simulator(chain).run(BadSend())

    def test_round_cap(self, chain):
        class Chatter(Protocol):
            def on_start(self, ctx):
                ctx.broadcast("hi")

            def on_message(self, ctx, sender, payload):
                ctx.broadcast("hi")  # never stops

        with pytest.warns(NonQuiescentTermination, match="round cap"):
            result = Simulator(chain).run(Chatter(), max_rounds=5)
        assert result.rounds == 5
        assert not result.quiesced

    def test_quiescent_run_does_not_warn(self, chain):
        with warnings.catch_warnings():
            warnings.simplefilter("error", NonQuiescentTermination)
            result = Simulator(chain).run(EchoOnce())
        assert result.quiesced

    def test_cap_landing_on_last_round_still_quiesces(self, chain):
        """A cap equal to the natural round count is not a failure."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", NonQuiescentTermination)
            result = Simulator(chain).run(EchoOnce(), max_rounds=1)
        assert result.quiesced and result.rounds == 1

    def test_no_faults_counters_zero(self, chain):
        result = Simulator(chain).run(EchoOnce())
        assert result.messages_dropped == 0
        assert result.messages_duplicated == 0
        assert result.timers_fired == 0

    def test_loss_rate_and_fault_plan_mutually_exclusive(self, chain):
        with pytest.raises(ValueError):
            Simulator(chain, loss_rate=0.5, fault_plan=FaultPlan(loss_rate=0.5))

    def test_delivery_order_stable_for_same_link_copies(self, chain):
        """Two same-link messages in one round arrive in send order."""

        class TwoSends(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.send(1, "first")
                    ctx.send(1, "second")

            def on_message(self, ctx, sender, payload):
                ctx.state.setdefault("log", []).append(payload)

        result = Simulator(chain).run(TwoSends())
        assert result.states[1]["log"] == ["first", "second"]


class TestTimers:
    def test_timer_fires_after_delay(self, chain):
        class OneTimer(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.set_timer(3)

            def on_message(self, ctx, sender, payload):
                pass

            def on_timer(self, ctx):
                ctx.state["fired_at"] = ctx._round

        result = Simulator(chain).run(OneTimer())
        assert result.states[0]["fired_at"] == 3
        assert result.timers_fired == 1
        assert result.rounds == 3 and result.quiesced

    def test_timer_keeps_simulation_alive_past_empty_outbox(self, chain):
        """Quiescence waits for the timer queue to drain."""

        class LateSender(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.set_timer(2)

            def on_message(self, ctx, sender, payload):
                ctx.state["got"] = payload

            def on_timer(self, ctx):
                ctx.send(1, "late")

        result = Simulator(chain).run(LateSender())
        assert result.states[1]["got"] == "late"
        assert result.quiesced

    def test_timer_delay_must_be_positive(self, chain):
        class BadTimer(Protocol):
            def on_start(self, ctx):
                ctx.set_timer(0)

            def on_message(self, ctx, sender, payload):
                pass

        with pytest.raises(ValueError):
            Simulator(chain).run(BadTimer())


class TestTTLFlood:
    def test_heard_matches_hops(self, chain):
        result = Simulator(chain).run(TTLFloodProtocol(ttl=2))
        # Node 0 hears itself, 1 (1 hop), 2 (2 hops).
        assert result.states[0]["heard"] == {0, 1, 2}
        assert result.states[3]["heard"] == {1, 2, 3, 4, 5}

    def test_ttl_one_is_neighbors_only(self, chain):
        result = Simulator(chain).run(TTLFloodProtocol(ttl=1))
        assert result.states[2]["heard"] == {1, 2, 3}

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            TTLFloodProtocol(ttl=0)


class TestMinLabel:
    def test_single_component_converges_to_zero(self, chain):
        result = Simulator(chain).run(MinLabelProtocol())
        assert all(s["label"] == 0 for s in result.states.values())

    def test_split_components(self, chain):
        result = Simulator(chain, participants={0, 1, 3, 4, 5}).run(
            MinLabelProtocol()
        )
        assert result.states[0]["label"] == 0
        assert result.states[1]["label"] == 0
        assert result.states[3]["label"] == 3
        assert result.states[5]["label"] == 3


class TestNonQuiescentTermination:
    def test_warning_carries_round_and_pending_counts(self, chain):
        """The warning message reports the cap plus pending message and
        timer counts so a truncated run is diagnosable from the log."""

        class Chatter(Protocol):
            def on_start(self, ctx):
                ctx.broadcast("hi")

            def on_message(self, ctx, sender, payload):
                ctx.broadcast("hi")

        with pytest.warns(
            NonQuiescentTermination,
            match=r"round cap \(3\).*\d+ messages and \d+ timers",
        ):
            result = Simulator(chain).run(Chatter(), max_rounds=3)
        assert not result.quiesced

    def test_pending_timer_at_cap_is_reported(self, chain):
        """A run cut off with only a timer outstanding still warns, and
        the counts distinguish timers from messages."""

        class SlowTimer(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.broadcast("tick")
                    ctx.set_timer(10)

            def on_message(self, ctx, sender, payload):
                pass

        with pytest.warns(
            NonQuiescentTermination, match=r"0 messages and 1 timers"
        ):
            result = Simulator(chain).run(SlowTimer(), max_rounds=2)
        assert not result.quiesced

    def test_post_loop_recheck_with_timer_on_final_round(self, chain):
        """A timer that fires exactly on the cap round and produces no new
        work leaves the run quiescent: the post-loop re-check must not
        report a false truncation."""

        class FinalTimer(Protocol):
            def on_start(self, ctx):
                if ctx.node == 0:
                    ctx.broadcast("tick")
                    ctx.set_timer(1)

            def on_message(self, ctx, sender, payload):
                pass

            def on_timer(self, ctx):
                ctx.state["fired"] = True

        with warnings.catch_warnings():
            warnings.simplefilter("error", NonQuiescentTermination)
            result = Simulator(chain).run(FinalTimer(), max_rounds=1)
        assert result.quiesced
        assert result.states[0].get("fired") is True
        assert result.timers_fired == 1

    def test_reliable_stats_aggregate_on_truncated_run(self, chain):
        """reliable_stats still sums per-node counters when the reliable
        run is cut off by the round cap mid-retransmission."""
        from repro.runtime.faults import FaultPlan
        from repro.runtime.protocols import (
            ReliableProtocol,
            RetryPolicy,
            reliable_stats,
        )

        plan = FaultPlan(loss_rate=1.0)
        with pytest.warns(NonQuiescentTermination, match="round cap"):
            result = Simulator(
                chain, fault_plan=plan, rng=np.random.default_rng(0)
            ).run(
                ReliableProtocol(TTLFloodProtocol(2), RetryPolicy(max_retries=50)),
                max_rounds=6,
            )
        assert not result.quiesced
        stats = reliable_stats(result)
        # Every link is dead, so retransmissions accumulated but nothing
        # was acked or duplicated before the cap hit.
        assert stats.retransmissions > 0
        assert stats.acks_sent == 0
        assert stats.duplicates_suppressed == 0
        # No give-ups yet: the budget (50) outlives the 6-round cap.
        assert stats.gave_up == 0
