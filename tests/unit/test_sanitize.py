"""Unit tests for the repro-san dynamic determinism harness.

The matrix runner, trace normalization, and first-divergence reporting
are all exercised with injected runners -- no subprocesses here; the
end-to-end subprocess path lives in
``tests/integration/test_sanitize_pipeline.py``.
"""

import json

import pytest

from repro.analysis.sanitize import (
    Cell,
    CellError,
    ScenarioSpec,
    build_cells,
    collect_artifacts,
    first_divergence,
    main,
    normalize_trace,
    run_matrix,
)

SPEC = ScenarioSpec(surface_nodes=8, interior_nodes=8)


def cells_2x2():
    return build_cells(["0", "1"], [1, 2])


# ------------------------------------------------------ first_divergence


def test_first_divergence_none_for_identical_bytes():
    assert first_divergence("a.json", b"same\n", b"same\n") is None


def test_first_divergence_reports_line_number():
    base = b"alpha\nbeta\ngamma\n"
    other = b"alpha\nBETA\ngamma\n"
    report = first_divergence("mesh_0.obj", base, other)
    assert report.startswith("mesh_0.obj: line 2:")
    assert "beta" in report and "BETA" in report


def test_first_divergence_reports_json_field_and_span_name():
    base = json.dumps({"name": "ubf.shard", "attrs": {"n_nodes": 5, "kernel": "v"}})
    other = json.dumps({"name": "ubf.shard", "attrs": {"n_nodes": 7, "kernel": "v"}})
    report = first_divergence("trace.jsonl", base.encode(), other.encode())
    assert "line 1" in report
    assert "span 'ubf.shard'" in report
    assert "attrs.n_nodes" in report and "5" in report and "7" in report


def test_first_divergence_reports_nested_list_and_missing_key():
    base = json.dumps({"boundary": [1, 2, 3]})
    other = json.dumps({"boundary": [1, 9, 3]})
    report = first_divergence("result.json", base.encode(), other.encode())
    assert "boundary[1]" in report

    base = json.dumps({"a": 1, "b": 2})
    other = json.dumps({"a": 1})
    report = first_divergence("result.json", base.encode(), other.encode())
    assert "b (missing in this cell)" in report


def test_first_divergence_reports_extra_lines():
    report = first_divergence("trace.jsonl", b"one\n", b"one\ntwo\n")
    assert "1 line(s)" in report and "2" in report


# ------------------------------------------------------ normalize_trace


def test_normalize_trace_strips_run_identity_attrs():
    lines = [
        {"format_version": 1, "kind": "trace"},
        {"name": "cli.detect", "attrs": {"workers": 4, "seed": 0}},
        {"name": "detect", "attrs": {"config": {"workers": 4, "theta": 20}}},
    ]
    raw = ("\n".join(json.dumps(doc) for doc in lines) + "\n").encode()
    normalized = json.loads(normalize_trace(raw).decode().splitlines()[1])
    assert normalized["attrs"] == {"seed": 0}
    deeper = json.loads(normalize_trace(raw).decode().splitlines()[2])
    assert deeper["attrs"] == {"config": {"theta": 20}}


def test_normalize_trace_is_byte_stable_when_nothing_to_strip():
    doc = {"attrs": {"n_nodes": 3}, "name": "ubf.shard"}
    raw = (json.dumps(doc, sort_keys=True, separators=(", ", ": ")) + "\n").encode()
    assert normalize_trace(raw) == raw


# ----------------------------------------------------------- run_matrix


def write_artifacts(cell_dir, result, trace_attrs):
    (cell_dir / "result.json").write_text(json.dumps(result, sort_keys=True) + "\n")
    trace = {"name": "detect", "attrs": trace_attrs}
    (cell_dir / "trace.jsonl").write_text(json.dumps(trace) + "\n")


def test_run_matrix_identical_runner_passes(tmp_path):
    def runner(spec, cell, cell_dir):
        # workers appears only as a run-identity attr, which normalization
        # strips -- the matrix must report byte-identity.
        write_artifacts(cell_dir, {"boundary": [1, 2]}, {"workers": cell.workers})

    ok, report = run_matrix(SPEC, cells_2x2(), tmp_path, runner=runner)
    assert ok and report == []


def test_run_matrix_detects_injected_nondeterminism(tmp_path):
    def runner(spec, cell, cell_dir):
        # a worker-count leak into the result payload, as a sharding bug
        # that merges results in completion order would produce
        boundary = [1, 2] if cell.workers == 1 else [2, 1]
        write_artifacts(cell_dir, {"boundary": boundary}, {"n": 1})

    ok, report = run_matrix(SPEC, cells_2x2(), tmp_path, runner=runner)
    assert not ok
    assert len(report) == 2  # the two workers=2 cells diverge
    assert all("result.json" in line for line in report)
    assert "boundary[0]" in report[0]


def test_run_matrix_reports_missing_artifacts(tmp_path):
    def runner(spec, cell, cell_dir):
        write_artifacts(cell_dir, {"ok": True}, {})
        if cell.workers == 1:
            (cell_dir / "mesh_0.obj").write_text("v 0 0 0\n")

    ok, report = run_matrix(SPEC, cells_2x2(), tmp_path, runner=runner)
    assert not ok
    assert any("mesh_0.obj: missing in cell" in line for line in report)


def test_run_matrix_raises_on_empty_cell_and_short_matrix(tmp_path):
    def runner(spec, cell, cell_dir):
        pass

    with pytest.raises(CellError):
        run_matrix(SPEC, cells_2x2(), tmp_path, runner=runner)
    with pytest.raises(ValueError):
        run_matrix(SPEC, [Cell("0", 1)], tmp_path, runner=runner)


def test_collect_artifacts_orders_meshes_and_normalizes_trace(tmp_path):
    (tmp_path / "net.json").write_text("{}\n")
    (tmp_path / "result.json").write_text("{}\n")
    (tmp_path / "mesh_1.obj").write_text("v 1\n")
    (tmp_path / "mesh_0.obj").write_text("v 0\n")
    (tmp_path / "trace.jsonl").write_text(
        json.dumps({"name": "x", "attrs": {"workers": 3}}) + "\n"
    )
    artifacts = collect_artifacts(tmp_path)
    assert sorted(artifacts) == [
        "mesh_0.obj",
        "mesh_1.obj",
        "net.json",
        "result.json",
        "trace.jsonl",
    ]
    assert b"workers" not in artifacts["trace.jsonl"]


def test_kernel_cells_share_one_group(tmp_path):
    """Kernels must NOT form their own byte-diff groups: a kernel-dependent
    artifact is a divergence, not a tolerated difference."""
    cells = build_cells(["0"], [1], ["batch"], ["vectorized", "batched"])
    assert [c.kernel for c in cells] == ["vectorized", "batched"]
    assert len({c.dirname for c in cells}) == 2

    def leaky(spec, cell, cell_dir):
        write_artifacts(cell_dir, {"boundary": [1, 2]}, {"kernel": cell.kernel})
        # kernel attr is run identity: stripped, so this alone must pass

    ok, report = run_matrix(SPEC, cells, tmp_path / "clean", runner=leaky)
    assert ok and report == []

    def divergent(spec, cell, cell_dir):
        write_artifacts(cell_dir, {"boundary": [cell.kernel]}, {})

    ok, report = run_matrix(SPEC, cells, tmp_path / "leak", runner=divergent)
    assert not ok
    assert any("result.json" in line for line in report)


def test_normalize_trace_strips_kernel_attrs():
    lines = [
        {"name": "cli.detect", "attrs": {"kernel": "batched", "seed": 0}},
        {"name": "detect", "attrs": {"config": {"ubf": {"kernel": "batched"}}}},
    ]
    raw = ("\n".join(json.dumps(doc) for doc in lines) + "\n").encode()
    out = normalize_trace(raw).decode().splitlines()
    assert json.loads(out[0])["attrs"] == {"seed": 0}
    assert json.loads(out[1])["attrs"] == {"config": {"ubf": {}}}


# ----------------------------------------------------------------- main


def test_main_self_test_detects_injected_divergence(tmp_path, capsys):
    assert main(["--self-test", "--workdir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "self-test OK" in out
    assert "workers_leak" in out


def test_main_usage_errors_exit_2(tmp_path, capsys):
    assert main(["--hash-seeds", "banana", "--workdir", str(tmp_path)]) == 2
    assert main(["--workers", "x", "--workdir", str(tmp_path)]) == 2
    assert main(["--ubf-kernels", "turbo", "--workdir", str(tmp_path)]) == 2
    # a single-cell matrix has nothing to compare against
    assert (
        main(
            ["--hash-seeds", "0", "--workers", "1", "--workdir", str(tmp_path)]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert "error:" in err
