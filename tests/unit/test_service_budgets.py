"""Unit tests for per-job budgets and the BudgetExceeded contract."""

import time

import pytest

from repro.service.budgets import BudgetExceeded, JobBudget, enforce, peak_rss_mb


class TestJobBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            JobBudget(peak_rss_mb=-1)

    def test_unlimited(self):
        assert JobBudget().unlimited
        assert not JobBudget(wall_seconds=1.0).unlimited


class TestWallBudget:
    def test_fast_work_passes(self):
        with enforce(JobBudget(wall_seconds=5.0)):
            pass

    def test_slow_work_interrupted_mid_run(self):
        """SIGALRM pre-empts the sleep: the breach surfaces well before
        the work would have finished on its own."""
        start = time.monotonic()
        with pytest.raises(BudgetExceeded) as excinfo:
            with enforce(JobBudget(wall_seconds=0.1)):
                time.sleep(5.0)
        elapsed = time.monotonic() - start
        assert excinfo.value.kind == "wall_time"
        assert elapsed < 2.0  # interrupted, not a post-hoc check after 5 s

    def test_alarm_handler_restored(self):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(BudgetExceeded):
            with enforce(JobBudget(wall_seconds=0.05)):
                time.sleep(1.0)
        assert signal.getsignal(signal.SIGALRM) == before

    def test_exception_inside_block_still_disarms_timer(self):
        import signal

        with pytest.raises(RuntimeError, match="inner"):
            with enforce(JobBudget(wall_seconds=30.0)):
                raise RuntimeError("inner")
        # The itimer is disarmed: nothing fires later.
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestRssBudget:
    def test_peak_rss_observable(self):
        observed = peak_rss_mb()
        assert observed is not None
        assert observed > 1.0  # a running interpreter holds > 1 MB

    def test_tiny_limit_breaches_at_exit(self):
        with pytest.raises(BudgetExceeded) as excinfo:
            with enforce(JobBudget(peak_rss_mb=0.001)):
                pass
        assert excinfo.value.kind == "peak_rss"
        assert excinfo.value.observed > excinfo.value.limit

    def test_generous_limit_passes(self):
        with enforce(JobBudget(peak_rss_mb=1024 * 1024)):
            pass
