"""Unit tests for the durable job store (states, leases, cache, backoff)."""

import json

import pytest

from repro.observability.export import TRACE_FORMAT_VERSION, validate_trace_lines
from repro.service.jobstore import (
    STATE_DEAD,
    STATE_DONE,
    STATE_LEASED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRecord,
    JobSpec,
    JobStore,
    RetryBackoff,
    StaleAttemptError,
)


class FakeClock:
    """Settable clock so lease expiry is driven by the test, not sleeps."""

    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(tmp_path, clock):
    return JobStore(tmp_path / "store", clock=clock)


class TestJobSpec:
    def test_cache_key_stable_and_semantic(self):
        a = JobSpec(seed=1)
        b = JobSpec(seed=1)
        c = JobSpec(seed=2)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_operational_knob_excluded_from_key(self):
        """A delayed run must hit the cache entry of its undelayed twin."""
        plain = JobSpec(seed=5)
        delayed = JobSpec(seed=5, test_delay_seconds=3.0)
        assert plain.cache_key() == delayed.cache_key()

    def test_roundtrip(self):
        spec = JobSpec(scenario="cube", seed=9, error=0.1, surface=False)
        assert JobSpec.from_dict(spec.as_dict()) == spec


class TestSubmitAndClaim:
    def test_submit_creates_queued_record(self, store):
        rec = store.submit(JobSpec(seed=1))
        assert rec.state == STATE_QUEUED
        assert rec.attempts == 0
        loaded = store.load(rec.job_id)
        assert loaded.spec == rec.spec

    def test_job_ids_embed_submission_order(self, store):
        ids = [store.submit(JobSpec(seed=s)).job_id for s in range(3)]
        assert ids == sorted(ids)
        assert store.job_ids() == ids

    def test_claim_respects_submission_order(self, store):
        first = store.submit(JobSpec(seed=1))
        store.submit(JobSpec(seed=2))
        claimed = store.claim_next("w0", lease_ttl=10.0)
        assert claimed.job_id == first.job_id
        assert claimed.state == STATE_LEASED
        assert claimed.attempts == 1

    def test_claimed_job_not_reclaimable(self, store):
        store.submit(JobSpec(seed=1))
        assert store.claim_next("w0", lease_ttl=10.0) is not None
        assert store.claim_next("w1", lease_ttl=10.0) is None

    def test_claim_lock_arbitration(self, store):
        """A pre-created claim lock (a racing worker) blocks the claim."""
        rec = store.submit(JobSpec(seed=1))
        assert store._try_lock(rec.job_id, "claim-0-0.lock")
        assert store.claim_next("w0", lease_ttl=10.0) is None

    def test_not_before_defers_claim(self, store, clock):
        rec = store.submit(JobSpec(seed=1))
        loaded = store.load(rec.job_id)
        loaded.not_before = clock.now + 100.0
        store._write_record(loaded)
        assert store.claim_next("w0", lease_ttl=10.0) is None
        clock.advance(101.0)
        assert store.claim_next("w0", lease_ttl=10.0) is not None


class TestCompleteAndCache:
    def test_complete_populates_cache(self, store):
        spec = JobSpec(seed=1)
        rec = store.submit(spec)
        store.claim_next("w0", lease_ttl=10.0)
        store.complete(rec.job_id, "w0", {"n_boundary": 7})
        assert store.load(rec.job_id).state == STATE_DONE
        twin = store.submit(spec)
        assert twin.state == STATE_DONE
        assert twin.cache_hit
        assert twin.result == {"n_boundary": 7}

    def test_cache_hit_counts_metric_and_writes_empty_trace(self, store):
        spec = JobSpec(seed=1)
        rec = store.submit(spec)
        store.claim_next("w0", lease_ttl=10.0)
        store.complete(rec.job_id, "w0", {"ok": 1})
        twin = store.submit(spec)
        assert store.metrics.counter("service.cache.hits").value == 1
        lines = store.trace_path(twin.job_id).read_text().splitlines()
        assert len(lines) == 1  # header only: zero pipeline spans
        header = json.loads(lines[0])
        assert header["kind"] == "trace"
        # The header is built by the exporter, so it tracks the trace
        # schema version instead of silently drifting from it.
        assert header["format_version"] == TRACE_FORMAT_VERSION
        assert validate_trace_lines(lines) == []

    def test_degraded_result_never_cached(self, store):
        spec = JobSpec(seed=1)
        rec = store.submit(spec)
        store.claim_next("w0", lease_ttl=10.0)
        store.complete(rec.job_id, "w0", {"ok": 1}, degraded=True)
        twin = store.submit(spec)
        assert twin.state == STATE_QUEUED
        assert not twin.cache_hit


class TestFailureAndRetry:
    def test_fail_requeues_with_backoff(self, store, clock):
        rec = store.submit(JobSpec(seed=1), max_attempts=3)
        store.claim_next("w0", lease_ttl=10.0)
        failed = store.fail(
            rec.job_id, "w0", {"type": "Boom", "message": "x"},
            backoff=RetryBackoff(base=2.0, jitter=0.0),
        )
        assert failed.state == STATE_QUEUED
        assert failed.not_before == pytest.approx(clock.now + 2.0)
        assert failed.error["type"] == "Boom"

    def test_attempt_cap_dead_letters(self, store):
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        failed = store.fail(rec.job_id, "w0", {"type": "Boom", "message": "x"})
        assert failed.state == STATE_DEAD
        assert store.metrics.counter("service.jobs.dead").value == 1

    def test_requeue_resets_budget(self, store):
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        store.fail(rec.job_id, "w0", {"type": "Boom", "message": "x"})
        revived = store.requeue(rec.job_id)
        assert revived.state == STATE_QUEUED
        assert revived.attempts == 0
        assert revived.error is None

    def test_requeued_dead_job_is_claimable_again(self, store):
        """The end-to-end requeue contract: a dead job returned to the
        queue can actually be claimed despite its consumed claim locks
        (the generation bump gives the fresh attempts fresh lock names)."""
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        store.fail(rec.job_id, "w0", {"type": "Boom", "message": "x"})
        assert store.load(rec.job_id).state == STATE_DEAD
        revived = store.requeue(rec.job_id)
        assert revived.generation == 1
        claimed = store.claim_next("w1", lease_ttl=10.0)
        assert claimed is not None
        assert claimed.job_id == rec.job_id
        assert claimed.state == STATE_LEASED
        assert claimed.attempts == 1
        # ... and its full lifecycle works: fail at the cap, requeue,
        # claim a third life.
        store.fail(rec.job_id, "w1", {"type": "Boom", "message": "y"})
        store.requeue(rec.job_id)
        assert store.claim_next("w2", lease_ttl=10.0) is not None

    def test_requeue_clears_degradation(self, store):
        """A requeue grants the *full* pipeline back: a job that died
        after a budget breach must not be revived permanently degraded."""
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        store.mark_degraded_retry(rec.job_id, "w0", "wall_time")
        store.claim_next("w0", lease_ttl=10.0)
        store.fail(rec.job_id, "w0", {"type": "Boom", "message": "x"})
        assert store.load(rec.job_id).state == STATE_DEAD
        revived = store.requeue(rec.job_id)
        assert revived.degraded is False
        assert revived.budget_breached is None


class TestLeaseReaping:
    def test_live_lease_not_reaped(self, store, clock):
        store.submit(JobSpec(seed=1))
        store.claim_next("w0", lease_ttl=50.0)
        assert store.reap_expired() == []

    def test_expired_lease_requeued(self, store, clock):
        rec = store.submit(JobSpec(seed=1), max_attempts=3)
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(6.0)
        reaped = store.reap_expired(backoff=RetryBackoff(jitter=0.0))
        assert reaped == [rec.job_id]
        loaded = store.load(rec.job_id)
        assert loaded.state == STATE_QUEUED
        assert loaded.error["type"] == "LeaseExpired"
        assert store.metrics.counter("service.lease.expired").value == 1

    def test_heartbeat_extends_lease(self, store, clock):
        rec = store.submit(JobSpec(seed=1))
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(4.0)
        store.heartbeat(rec.job_id, "w0", lease_ttl=5.0)
        clock.advance(4.0)  # past original expiry, inside renewed one
        assert store.reap_expired() == []

    def test_expired_lease_at_cap_dead_letters(self, store, clock):
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(6.0)
        store.reap_expired()
        assert store.load(rec.job_id).state == STATE_DEAD

    def test_double_reap_is_idempotent(self, store, clock):
        """The expire lock means one lapse is processed exactly once."""
        rec = store.submit(JobSpec(seed=1), max_attempts=5)
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(6.0)
        assert store.reap_expired() == [rec.job_id]
        # Force the record back into leased shape without a new attempt:
        # a second reap of the same attempt must be a no-op.
        loaded = store.load(rec.job_id)
        loaded.state = STATE_RUNNING
        store._write_record(loaded)
        assert store.reap_expired() == []


class TestStaleWorkerFencing:
    """A worker that stalls past its lease must not corrupt the live
    attempt: outcomes, failures, and heartbeats from a lapsed claim are
    discarded."""

    def _lapse_and_reclaim(self, store, clock):
        """Claim by w0, let the lease lapse, reap, re-claim by w1.
        Returns the job id; w0's fencing token is (generation 0, attempt
        1), the live attempt is w1's (generation 0, attempt 2)."""
        rec = store.submit(JobSpec(seed=1), max_attempts=5)
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(6.0)
        store.reap_expired(backoff=RetryBackoff(base=0.0, jitter=0.0))
        reclaimed = store.claim_next("w1", lease_ttl=50.0)
        assert reclaimed is not None and reclaimed.attempts == 2
        return rec.job_id

    def test_stale_complete_discarded(self, store, clock):
        job_id = self._lapse_and_reclaim(store, clock)
        with pytest.raises(StaleAttemptError):
            store.complete(job_id, "w0", {"ok": 0}, attempt=1, generation=0)
        loaded = store.load(job_id)
        assert loaded.state == STATE_LEASED  # the live attempt, untouched
        assert loaded.worker_id == "w1"
        # ... and the live worker's own completion still lands.
        store.complete(job_id, "w1", {"ok": 1}, attempt=2, generation=0)
        assert store.load(job_id).state == STATE_DONE

    def test_stale_fail_discarded(self, store, clock):
        job_id = self._lapse_and_reclaim(store, clock)
        with pytest.raises(StaleAttemptError):
            store.fail(
                job_id, "w0", {"type": "Boom", "message": "late"},
                attempt=1, generation=0,
            )
        loaded = store.load(job_id)
        assert loaded.state == STATE_LEASED
        assert loaded.attempts == 2  # no retry burned by the stale report

    def test_stale_heartbeat_refused(self, store, clock):
        job_id = self._lapse_and_reclaim(store, clock)
        expiry_before = store.lease_of(job_id)["expires_at"]
        assert not store.heartbeat(
            job_id, "w0", lease_ttl=500.0, attempt=1, generation=0
        )
        assert store.lease_of(job_id)["expires_at"] == expiry_before
        assert store.heartbeat(
            job_id, "w1", lease_ttl=500.0, attempt=2, generation=0
        )
        assert store.metrics.counter("service.stale.heartbeats").value == 1

    def test_stale_mark_running_discarded(self, store, clock):
        """A stale worker must not resurrect a reaped job to running --
        that would strand it (the lapse's expire lock is already spent)."""
        rec = store.submit(JobSpec(seed=1), max_attempts=5)
        store.claim_next("w0", lease_ttl=5.0)
        clock.advance(6.0)
        store.reap_expired(backoff=RetryBackoff(base=0.0, jitter=0.0))
        with pytest.raises(StaleAttemptError):
            store.mark_running(rec.job_id, "w0", attempt=1, generation=0)
        assert store.load(rec.job_id).state == STATE_QUEUED

    def test_pre_requeue_token_is_stale(self, store):
        """A manual requeue bumps the generation, so any token from the
        job's previous life is fenced out even if attempt numbers align."""
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        store.fail(rec.job_id, "w0", {"type": "Boom", "message": "x"})
        store.requeue(rec.job_id)
        store.claim_next("w1", lease_ttl=10.0)  # generation 1, attempt 1
        with pytest.raises(StaleAttemptError):
            store.complete(rec.job_id, "w0", {"ok": 0}, attempt=1, generation=0)
        store.complete(rec.job_id, "w1", {"ok": 1}, attempt=1, generation=1)
        assert store.load(rec.job_id).state == STATE_DONE

    def test_stale_discard_logged(self, store, clock):
        job_id = self._lapse_and_reclaim(store, clock)
        with pytest.raises(StaleAttemptError):
            store.complete(job_id, "w0", {"ok": 0}, attempt=1, generation=0)
        log = (store.job_dir(job_id) / "log.jsonl").read_text()
        events = [json.loads(line)["event"] for line in log.splitlines()]
        assert "stale_discarded" in events


class TestBackoff:
    def test_exponential_schedule_capped(self):
        backoff = RetryBackoff(base=1.0, factor=2.0, cap=5.0, jitter=0.0)
        key = JobSpec(seed=1).cache_key()
        assert [backoff.delay(key, n) for n in (2, 3, 4, 5)] == [
            1.0, 2.0, 4.0, 5.0,
        ]

    def test_jitter_deterministic_per_job_attempt(self):
        backoff = RetryBackoff(base=1.0, jitter=0.2)
        key = JobSpec(seed=1).cache_key()
        assert backoff.delay(key, 2) == backoff.delay(key, 2)
        other = JobSpec(seed=2).cache_key()
        assert backoff.delay(key, 2) != backoff.delay(other, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBackoff(factor=0.5)
        with pytest.raises(ValueError):
            RetryBackoff(jitter=1.5)
        with pytest.raises(ValueError):
            RetryBackoff(base=10.0, cap=1.0)


class TestCanonicalState:
    def test_excludes_operational_fields(self, store, clock):
        rec = store.submit(JobSpec(seed=1))
        store.claim_next("w-alpha", lease_ttl=10.0)
        store.complete(rec.job_id, "w-alpha", {"ok": 1})
        text = store.canonical_state()
        assert "w-alpha" not in text
        assert "not_before" not in text
        assert "updated_at" not in text
        docs = json.loads(text)
        assert docs[0]["state"] == STATE_DONE
        assert docs[0]["attempts"] == 1

    def test_identical_across_worker_names_and_clocks(self, tmp_path):
        """Two stores fed the same queue through differently named workers
        at different times project to identical canonical bytes."""
        def run(root, worker, start):
            clock = FakeClock(start)
            store = JobStore(root, clock=clock)
            rec = store.submit(JobSpec(seed=1))
            store.claim_next(worker, lease_ttl=10.0)
            clock.advance(3.0)
            store.complete(rec.job_id, worker, {"n_boundary": 4})
            return store.canonical_state()

        a = run(tmp_path / "a", "w-one", 100.0)
        b = run(tmp_path / "b", "w-two", 9999.0)
        assert a == b

    def test_error_traceback_excluded(self, store):
        rec = store.submit(JobSpec(seed=1), max_attempts=1)
        store.claim_next("w0", lease_ttl=10.0)
        store.fail(
            rec.job_id, "w0",
            {"type": "Boom", "message": "x", "traceback": "/tmp/xyz123 frame"},
        )
        text = store.canonical_state()
        assert "Boom" in text
        assert "xyz123" not in text


class TestRecordRoundtrip:
    def test_format_version_checked(self, store):
        rec = store.submit(JobSpec(seed=1))
        doc = json.loads((store.job_dir(rec.job_id) / "job.json").read_text())
        doc["format_version"] = 99
        with pytest.raises(ValueError, match="unsupported job format"):
            JobRecord.from_dict(doc)

    def test_transition_log_is_append_only_jsonl(self, store, clock):
        rec = store.submit(JobSpec(seed=1))
        store.claim_next("w0", lease_ttl=10.0)
        store.complete(rec.job_id, "w0", {"ok": 1})
        lines = (store.job_dir(rec.job_id) / "log.jsonl").read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["submitted", "leased", "done"]
