"""Unit tests for the in-process worker: execution, retries, degradation."""

import pytest

from repro.observability.export import validate_trace_lines
from repro.service.budgets import JobBudget
from repro.service.jobstore import (
    STATE_DEAD,
    STATE_DONE,
    JobSpec,
    JobStore,
    RetryBackoff,
)
from repro.service.worker import Worker, detector_config_for, execute_job

#: Small deployment so each pipeline run stays fast.
SMALL = dict(
    n_surface=60, n_interior=80, target_degree=12.0, theta=8, surface=True
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "store")


def fast_worker(store, worker_id="w0", **kwargs):
    kwargs.setdefault("lease_ttl", 30.0)
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("backoff", RetryBackoff(base=0.0, jitter=0.0))
    return Worker(store, worker_id, **kwargs)


class TestDetectorConfigMapping:
    def test_error_model_selection(self):
        exact = detector_config_for(JobSpec(error=0.0), degraded=False)
        noisy = detector_config_for(JobSpec(error=0.2), degraded=False)
        assert type(exact.error_model).__name__ == "NoError"
        assert type(noisy.error_model).__name__ == "UniformAbsoluteError"

    def test_degraded_overrides(self):
        spec = JobSpec(engine="batch", workers=4)
        config = detector_config_for(spec, degraded=True)
        assert config.localization_config.engine == "pernode"
        assert config.workers == 1
        full = detector_config_for(spec, degraded=False)
        assert full.localization_config.engine == "batch"
        assert full.workers == 4


class TestExecuteJob:
    def test_full_run_result_shape(self):
        doc = execute_job(JobSpec(seed=3, **SMALL))
        assert doc["degraded"] is False
        assert doc["n_nodes"] == 140
        assert doc["n_boundary"] > 0
        assert doc["stats"]["n_truth"] == 60
        assert doc["surface"] is not None

    def test_degraded_run_skips_surface(self):
        doc = execute_job(JobSpec(seed=3, **SMALL), degraded=True)
        assert doc["degraded"] is True
        assert doc["surface"] is None


class TestWorkerLoop:
    def test_drains_queue_and_writes_valid_traces(self, store):
        for seed in (1, 2):
            store.submit(JobSpec(seed=seed, **SMALL))
        processed = fast_worker(store).run(exit_when_idle=True)
        assert processed == 2
        for record in store.jobs():
            assert record.state == STATE_DONE
            lines = store.trace_path(record.job_id).read_text().splitlines()
            assert validate_trace_lines(lines) == []
            assert any('"name": "job"' in line for line in lines)
        assert store.metrics.counter("service.jobs.completed").value == 2

    def test_max_jobs_stops_early(self, store):
        for seed in (1, 2, 3):
            store.submit(JobSpec(seed=seed, **SMALL))
        assert fast_worker(store).run(max_jobs=1) == 1
        assert store.counts()[STATE_DONE] == 1

    def test_metrics_snapshot_written(self, store):
        store.submit(JobSpec(seed=1, **SMALL))
        fast_worker(store, worker_id="snap").run(exit_when_idle=True)
        path = store.workers_dir / "snap.metrics.json"
        assert path.exists()
        assert "service.jobs.claimed" in path.read_text()


class TestFailureHandling:
    def test_crash_retried_then_dead_lettered(self, store):
        """An unknown scenario raises inside the pipeline: the job burns
        its attempts through requeues and dead-letters with a traceback."""
        rec = store.submit(
            JobSpec(scenario="no-such-shape", **SMALL), max_attempts=2
        )
        fast_worker(store).run(exit_when_idle=True)
        loaded = store.load(rec.job_id)
        assert loaded.state == STATE_DEAD
        assert loaded.attempts == 2
        assert loaded.error["type"] in ("KeyError", "ValueError")
        assert "traceback" in loaded.error
        assert store.metrics.counter("service.jobs.retried").value == 1
        assert store.metrics.counter("service.jobs.dead").value == 1

    def test_failure_trace_still_written(self, store):
        rec = store.submit(
            JobSpec(scenario="no-such-shape", **SMALL), max_attempts=1
        )
        fast_worker(store).run(exit_when_idle=True)
        lines = store.trace_path(rec.job_id).read_text().splitlines()
        assert validate_trace_lines(lines) == []  # partial trace, valid


class TestDegradationLadder:
    def test_wall_breach_completes_degraded(self, store):
        """A job that blows its wall budget is retried degraded -- and the
        degraded completion is done, flagged, and never cached."""
        spec = JobSpec(seed=4, test_delay_seconds=0.5, **SMALL)
        rec = store.submit(spec, max_attempts=3)
        worker = fast_worker(store, budget=JobBudget(wall_seconds=0.1))
        worker.run(exit_when_idle=True)
        loaded = store.load(rec.job_id)
        assert loaded.state == STATE_DONE
        assert loaded.degraded
        assert loaded.budget_breached == "wall_time"
        assert loaded.attempts == 2
        assert loaded.result["surface"] is None
        assert store.metrics.counter("service.jobs.degraded").value == 1
        # Degraded output must not poison the cache for future submits.
        twin = store.submit(JobSpec(seed=4, **SMALL))
        assert not twin.cache_hit

    def test_rss_breach_completes_degraded(self, store):
        """An unmeetable RSS budget triggers the same ladder via the
        post-hoc peak-RSS check."""
        rec = store.submit(JobSpec(seed=5, **SMALL), max_attempts=3)
        worker = fast_worker(store, budget=JobBudget(peak_rss_mb=0.001))
        worker.run(exit_when_idle=True)
        loaded = store.load(rec.job_id)
        assert loaded.state == STATE_DONE
        assert loaded.degraded
        assert loaded.budget_breached == "peak_rss"


class TestDeterminism:
    def test_canonical_state_independent_of_worker_split(self, tmp_path):
        """The acceptance byte-diff: the same submitted queue resolves to
        identical canonical bytes whether one worker drains it or two
        split it."""
        def drain(root, worker_ids):
            store = JobStore(root)
            for seed in (1, 2, 3):
                store.submit(JobSpec(seed=seed, **SMALL))
            for wid in worker_ids:
                fast_worker(store, worker_id=wid).run(exit_when_idle=True)
            return store

        solo = drain(tmp_path / "solo", ["only"])
        duo = drain(tmp_path / "duo", ["a", "b"])
        assert solo.canonical_state() == duo.canonical_state()

    def test_tick_traces_byte_identical_across_runs(self, tmp_path):
        def trace_bytes(root):
            store = JobStore(root)
            rec = store.submit(JobSpec(seed=1, **SMALL))
            fast_worker(store).run(exit_when_idle=True)
            return store.trace_path(rec.job_id).read_bytes()

        assert trace_bytes(tmp_path / "x") == trace_bytes(tmp_path / "y")
