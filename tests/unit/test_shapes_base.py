"""Unit tests for the generic Shape3D machinery."""

import numpy as np
import pytest

from repro.shapes.csg import Difference
from repro.shapes.sampling import (
    multinomial_split,
    orthonormal_frame,
    sample_circle,
    sample_unit_disk,
    sample_unit_sphere,
)
from repro.shapes.solids import Sphere


class TestGenericInterior:
    def test_rejection_sampler_fails_on_empty_region(self, rng):
        # A hole that swallows the whole outer shape leaves no interior.
        empty = Difference(Sphere(radius=0.5), [Sphere(radius=1.0)])
        with pytest.raises(RuntimeError):
            empty.sample_interior(10, rng, max_batches=3)

    def test_zero_requests(self, rng):
        s = Sphere()
        assert s.sample_interior(0, rng).shape == (0, 3)

    def test_contains_point_scalar(self):
        assert Sphere().contains_point([0.0, 0.0, 0.0])
        assert not Sphere().contains_point([2.0, 0.0, 0.0])


class TestSamplers:
    def test_unit_sphere_norms(self, rng):
        pts = sample_unit_sphere(500, rng)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_unit_disk_within(self, rng):
        pts = sample_unit_disk(500, rng)
        assert (np.linalg.norm(pts, axis=1) <= 1.0 + 1e-12).all()

    def test_disk_area_uniformity(self, rng):
        """Half the points fall inside radius 1/sqrt(2)."""
        pts = sample_unit_disk(20_000, rng)
        inner = (np.linalg.norm(pts, axis=1) < 1 / np.sqrt(2)).mean()
        assert inner == pytest.approx(0.5, abs=0.02)

    def test_circle_on_rim(self, rng):
        pts = sample_circle(200, rng)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_zero_counts(self, rng):
        assert sample_unit_sphere(0, rng).shape == (0, 3)
        assert sample_unit_disk(0, rng).shape == (0, 2)
        assert sample_circle(0, rng).shape == (0, 2)


class TestMultinomialSplit:
    def test_sums_to_n(self, rng):
        counts = multinomial_split(100, [1.0, 2.0, 7.0], rng)
        assert counts.sum() == 100

    def test_proportions(self, rng):
        counts = multinomial_split(100_000, [1.0, 3.0], rng)
        assert counts[1] / counts.sum() == pytest.approx(0.75, abs=0.01)

    def test_invalid_weights(self, rng):
        with pytest.raises(ValueError):
            multinomial_split(10, [-1.0, 2.0], rng)
        with pytest.raises(ValueError):
            multinomial_split(10, [0.0, 0.0], rng)


class TestOrthonormalFrame:
    def test_frame_is_orthonormal(self, rng):
        for _ in range(20):
            d = rng.normal(size=3)
            u, v = orthonormal_frame(d)
            d_hat = d / np.linalg.norm(d)
            assert abs(np.dot(u, v)) < 1e-10
            assert abs(np.dot(u, d_hat)) < 1e-10
            assert abs(np.dot(v, d_hat)) < 1e-10
            assert np.linalg.norm(u) == pytest.approx(1.0)
            assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_near_pole_direction(self):
        u, v = orthonormal_frame([0.0, 0.0, 1.0])
        assert abs(np.dot(u, v)) < 1e-10
