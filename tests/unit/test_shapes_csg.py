"""Unit tests for CSG difference and union."""

import numpy as np
import pytest

from repro.shapes.csg import Difference, Union
from repro.shapes.solids import Sphere


class TestDifference:
    def setup_method(self):
        self.shape = Difference(
            Sphere(radius=1.0), [Sphere(center=(0.3, 0, 0), radius=0.3)]
        )

    def test_contains_excludes_hole(self):
        assert not self.shape.contains_point([0.3, 0.0, 0.0])
        assert self.shape.contains_point([-0.5, 0.0, 0.0])
        assert not self.shape.contains_point([1.5, 0.0, 0.0])

    def test_surface_includes_both_boundaries(self, rng):
        pts = self.shape.sample_surface(800, rng)
        d_outer = np.abs(np.linalg.norm(pts, axis=1) - 1.0)
        d_hole = np.abs(
            np.linalg.norm(pts - np.array([0.3, 0, 0]), axis=1) - 0.3
        )
        on_outer = d_outer < 1e-9
        on_hole = d_hole < 1e-9
        assert (on_outer | on_hole).all()
        assert on_outer.sum() > 0
        assert on_hole.sum() > 0

    def test_surface_split_proportional_to_area(self, rng):
        pts = self.shape.sample_surface(4000, rng)
        on_hole = (
            np.abs(np.linalg.norm(pts - np.array([0.3, 0, 0]), axis=1) - 0.3)
            < 1e-9
        )
        expected_fraction = (0.3 ** 2) / (1.0 ** 2 + 0.3 ** 2)
        assert on_hole.mean() == pytest.approx(expected_fraction, abs=0.03)

    def test_interior_avoids_hole(self, rng):
        pts = self.shape.sample_interior(500, rng)
        assert self.shape.contains(pts).all()

    def test_requires_holes(self):
        with pytest.raises(ValueError):
            Difference(Sphere(), [])

    def test_volume_is_outer_minus_hole(self, rng):
        expected = Sphere(radius=1.0).volume - Sphere(radius=0.3).volume
        assert self.shape.volume_estimate(rng, samples=150_000) == pytest.approx(
            expected, rel=0.05
        )


class TestUnion:
    def setup_method(self):
        self.shape = Union(
            [Sphere(center=(0, 0, 0), radius=0.5), Sphere(center=(1.5, 0, 0), radius=0.5)]
        )

    def test_contains_either(self):
        assert self.shape.contains_point([0.0, 0.0, 0.0])
        assert self.shape.contains_point([1.5, 0.0, 0.0])
        assert not self.shape.contains_point([0.75, 0.0, 0.0])

    def test_surface_on_some_part(self, rng):
        pts = self.shape.sample_surface(300, rng)
        d0 = np.abs(np.linalg.norm(pts, axis=1) - 0.5)
        d1 = np.abs(np.linalg.norm(pts - np.array([1.5, 0, 0]), axis=1) - 0.5)
        assert ((d0 < 1e-9) | (d1 < 1e-9)).all()

    def test_overlapping_union_surface_excludes_buried_points(self, rng):
        overlapping = Union(
            [Sphere(radius=0.6), Sphere(center=(0.5, 0, 0), radius=0.6)]
        )
        pts = overlapping.sample_surface(400, rng)
        # No sampled surface point may be strictly inside the other part.
        inside0 = np.linalg.norm(pts, axis=1) < 0.6 - 1e-9
        inside1 = np.linalg.norm(pts - np.array([0.5, 0, 0]), axis=1) < 0.6 - 1e-9
        assert not (inside0 & inside1).any()

    def test_bounding_box_covers_parts(self):
        lo, hi = self.shape.bounding_box
        assert np.all(lo <= [-0.5, -0.5, -0.5])
        assert np.all(hi >= [2.0, 0.5, 0.5])

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            Union([])
