"""Unit tests for the scenario registry (Figs. 6-10)."""

import numpy as np
import pytest

from repro.shapes.library import (
    SCENARIO_FIGURES,
    SCENARIOS,
    scenario_by_name,
)


class TestRegistry:
    def test_five_paper_scenarios_present(self):
        assert set(SCENARIOS) == {
            "underwater",
            "one_hole",
            "two_holes",
            "bent_pipe",
            "sphere",
        }

    def test_every_scenario_has_figure_reference(self):
        assert set(SCENARIO_FIGURES) == set(SCENARIOS)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="sphere"):
            scenario_by_name("nope")


class TestScenarioGeometry:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_shapes_sample_and_contain(self, name, rng):
        shape = scenario_by_name(name)
        interior = shape.sample_interior(100, rng)
        assert shape.contains(interior).all()
        surface = shape.sample_surface(100, rng)
        assert surface.shape == (100, 3)

    def test_one_hole_has_void(self, rng):
        shape = scenario_by_name("one_hole")
        assert not shape.contains_point([0.12, 0.0, 0.0])

    def test_two_holes_have_two_voids(self):
        shape = scenario_by_name("two_holes")
        assert not shape.contains_point([-0.42, 0.0, 0.0])
        assert not shape.contains_point([0.42, 0.1, 0.05])
        assert shape.contains_point([0.0, -0.5, 0.0])

    def test_scenarios_are_fresh_instances(self):
        assert scenario_by_name("sphere") is not scenario_by_name("sphere")
