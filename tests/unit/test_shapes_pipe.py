"""Unit tests for the bent pipe (capsule around an arc)."""

import numpy as np
import pytest

from repro.shapes.pipe import BentPipe


class TestContains:
    def setup_method(self):
        self.pipe = BentPipe(bend_radius=1.0, tube_radius=0.3, sweep=np.pi)

    def test_centerline_inside(self):
        for phi in (0.0, np.pi / 4, np.pi / 2, np.pi):
            p = [np.cos(phi), np.sin(phi), 0.0]
            assert self.pipe.contains_point(p)

    def test_tube_wall_limits(self):
        assert self.pipe.contains_point([1.0, 0.0, 0.29])
        assert not self.pipe.contains_point([1.0, 0.0, 0.31])

    def test_cap_region_rounds_the_end(self):
        # Beyond the end at phi=0 the cap extends along -y up to tube_radius.
        assert self.pipe.contains_point([1.0, -0.25, 0.0])
        assert not self.pipe.contains_point([1.0, -0.35, 0.0])

    def test_gap_side_is_outside(self):
        # The un-swept half (negative y around the circle) is empty.
        assert not self.pipe.contains_point([0.0, -1.0, 0.0])

    def test_bend_center_outside(self):
        assert not self.pipe.contains_point([0.0, 0.0, 0.0])


class TestSurface:
    def setup_method(self):
        self.pipe = BentPipe(bend_radius=1.0, tube_radius=0.3, sweep=np.pi)

    def test_samples_at_tube_radius_from_centerline(self, rng):
        pts = self.pipe.sample_surface(600, rng)
        phi = self.pipe._clamped_arc_angle(pts)
        nearest = self.pipe._arc_point(phi)
        d = np.linalg.norm(pts - nearest, axis=1)
        assert np.allclose(d, 0.3, atol=1e-9)

    def test_samples_cover_caps_and_tube(self, rng):
        pts = self.pipe.sample_surface(2000, rng)
        # Cap points project (angularly) outside the swept range slightly,
        # i.e. have negative y near the phi=0 end.
        near_start_cap = pts[:, 1] < -1e-6
        assert near_start_cap.sum() > 0
        assert (~near_start_cap).sum() > near_start_cap.sum()

    def test_volume_estimate_matches_analytic(self, rng):
        assert self.pipe.volume_estimate(rng, samples=150_000) == pytest.approx(
            self.pipe.volume, rel=0.05
        )

    def test_area_split_roughly_matches(self, rng):
        pts = self.pipe.sample_surface(5000, rng)
        phi_raw = np.mod(np.arctan2(pts[:, 1], pts[:, 0]), 2 * np.pi)
        on_cap = (phi_raw > self.pipe.sweep)
        cap_area = 4 * np.pi * 0.3 ** 2
        expected = cap_area / self.pipe.surface_area
        # Loose bound: cap points with phi inside the sweep range blur this.
        assert on_cap.mean() == pytest.approx(expected, abs=0.05)


class TestValidation:
    def test_sweep_bounds(self):
        with pytest.raises(ValueError):
            BentPipe(sweep=0.0)
        with pytest.raises(ValueError):
            BentPipe(sweep=2 * np.pi)

    def test_tube_must_be_smaller_than_bend(self):
        with pytest.raises(ValueError):
            BentPipe(bend_radius=0.3, tube_radius=0.5)
