"""Unit tests for the primitive solids."""

import numpy as np
import pytest

from repro.shapes.solids import AxisAlignedBox, Cylinder, Sphere, Torus


class TestSphere:
    def test_contains(self):
        s = Sphere(center=(1, 0, 0), radius=0.5)
        assert s.contains_point([1.0, 0.0, 0.0])
        assert s.contains_point([1.4, 0.0, 0.0])
        assert not s.contains_point([1.6, 0.0, 0.0])

    def test_surface_samples_on_sphere(self, rng):
        s = Sphere(center=(2, -1, 3), radius=1.5)
        pts = s.sample_surface(500, rng)
        d = np.linalg.norm(pts - s.center, axis=1)
        assert np.allclose(d, 1.5, atol=1e-9)

    def test_surface_sampling_roughly_uniform(self, rng):
        """Octant counts of a uniform sphere sample are balanced."""
        pts = Sphere().sample_surface(8000, rng)
        octants = (pts > 0).astype(int)
        codes = octants[:, 0] * 4 + octants[:, 1] * 2 + octants[:, 2]
        counts = np.bincount(codes, minlength=8)
        assert counts.min() > 8000 / 8 * 0.8

    def test_interior_samples_inside(self, rng):
        s = Sphere(radius=2.0)
        pts = s.sample_interior(300, rng)
        assert s.contains(pts).all()

    def test_volume_matches_monte_carlo(self, rng):
        s = Sphere(radius=1.3)
        assert s.volume_estimate(rng, samples=100_000) == pytest.approx(
            s.volume, rel=0.05
        )

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Sphere(radius=0.0)


class TestAxisAlignedBox:
    def test_contains(self):
        b = AxisAlignedBox((0, 0, 0), (1, 2, 3))
        assert b.contains_point([0.5, 1.0, 2.9])
        assert not b.contains_point([1.5, 1.0, 1.0])

    def test_surface_samples_on_faces(self, rng):
        b = AxisAlignedBox((0, 0, 0), (1, 1, 1))
        pts = b.sample_surface(400, rng)
        on_face = np.zeros(len(pts), dtype=bool)
        for axis in range(3):
            on_face |= np.isclose(pts[:, axis], 0.0) | np.isclose(pts[:, axis], 1.0)
        assert on_face.all()

    def test_interior_uniform_mean(self, rng):
        b = AxisAlignedBox((0, 0, 0), (2, 2, 2))
        pts = b.sample_interior(5000, rng)
        assert np.allclose(pts.mean(axis=0), [1, 1, 1], atol=0.1)

    def test_surface_area(self):
        assert AxisAlignedBox((0, 0, 0), (1, 2, 3)).surface_area == pytest.approx(22.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            AxisAlignedBox((0, 0, 0), (1, -1, 1))


class TestCylinder:
    def test_contains(self):
        c = Cylinder(radius=1.0, height=2.0)
        assert c.contains_point([0.5, 0.0, 0.9])
        assert not c.contains_point([0.5, 0.0, 1.1])
        assert not c.contains_point([1.1, 0.0, 0.0])

    def test_surface_on_boundary(self, rng):
        c = Cylinder(radius=1.0, height=2.0)
        pts = c.sample_surface(600, rng)
        radial = np.sqrt(pts[:, 0] ** 2 + pts[:, 1] ** 2)
        on_side = np.isclose(radial, 1.0, atol=1e-9)
        on_cap = np.isclose(np.abs(pts[:, 2]), 1.0, atol=1e-9)
        assert (on_side | on_cap).all()

    def test_volume(self, rng):
        c = Cylinder(radius=0.8, height=1.5)
        assert c.volume_estimate(rng, samples=100_000) == pytest.approx(
            c.volume, rel=0.05
        )


class TestTorus:
    def test_contains_tube_center(self):
        t = Torus(major=2.0, minor=0.5)
        assert t.contains_point([2.0, 0.0, 0.0])
        assert not t.contains_point([0.0, 0.0, 0.0])  # the donut hole
        assert not t.contains_point([2.0, 0.0, 0.6])

    def test_surface_at_tube_radius(self, rng):
        t = Torus(major=2.0, minor=0.5)
        pts = t.sample_surface(500, rng)
        ring = np.sqrt(pts[:, 0] ** 2 + pts[:, 1] ** 2) - 2.0
        dist = np.sqrt(ring ** 2 + pts[:, 2] ** 2)
        assert np.allclose(dist, 0.5, atol=1e-9)

    def test_volume(self, rng):
        t = Torus(major=2.0, minor=0.5)
        assert t.volume_estimate(rng, samples=150_000) == pytest.approx(
            t.volume, rel=0.05
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Torus(major=0.4, minor=0.5)
