"""Unit tests for the underwater terrain region."""

import numpy as np
import pytest

from repro.shapes.terrain import UnderwaterTerrain


class TestHeights:
    def setup_method(self):
        self.terrain = UnderwaterTerrain(
            size=(2.0, 2.0), depth=0.8, bump_count=3, bump_height=0.3, seed=1
        )

    def test_bottom_below_top_everywhere(self):
        xs, ys = np.meshgrid(np.linspace(0, 2, 40), np.linspace(0, 2, 40))
        bottom = self.terrain.bottom_height(xs, ys)
        top = self.terrain.top_height(xs, ys)
        assert (bottom < top).all()

    def test_bumps_raise_bottom(self):
        """Somewhere the seabed rises measurably above the base depth."""
        xs, ys = np.meshgrid(np.linspace(0, 2, 80), np.linspace(0, 2, 80))
        bottom = self.terrain.bottom_height(xs, ys)
        assert bottom.max() > -0.8 + 0.05

    def test_deterministic_given_seed(self):
        other = UnderwaterTerrain(
            size=(2.0, 2.0), depth=0.8, bump_count=3, bump_height=0.3, seed=1
        )
        xs = np.linspace(0, 2, 17)
        assert np.allclose(
            self.terrain.bottom_height(xs, xs), other.bottom_height(xs, xs)
        )


class TestContains:
    def setup_method(self):
        self.terrain = UnderwaterTerrain(size=(2.0, 2.0), depth=0.8, seed=2)

    def test_middle_of_column_inside(self):
        assert self.terrain.contains_point([1.0, 1.0, -0.4])

    def test_above_surface_outside(self):
        assert not self.terrain.contains_point([1.0, 1.0, 0.5])

    def test_below_bottom_outside(self):
        assert not self.terrain.contains_point([1.0, 1.0, -0.9])

    def test_outside_footprint(self):
        assert not self.terrain.contains_point([-0.5, 1.0, -0.4])
        assert not self.terrain.contains_point([1.0, 2.5, -0.4])


class TestSampling:
    def setup_method(self):
        self.terrain = UnderwaterTerrain(size=(2.0, 2.0), depth=0.8, seed=3)

    def test_surface_points_on_boundary(self, rng):
        pts = self.terrain.sample_surface(600, rng)
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        tol = 1e-6
        on_top = np.abs(z - self.terrain.top_height(x, y)) < tol
        on_bottom = np.abs(z - self.terrain.bottom_height(x, y)) < tol
        on_wall = (
            (np.abs(x) < tol)
            | (np.abs(x - 2.0) < tol)
            | (np.abs(y) < tol)
            | (np.abs(y - 2.0) < tol)
        )
        assert (on_top | on_bottom | on_wall).all()
        assert on_top.sum() > 0
        assert on_bottom.sum() > 0
        assert on_wall.sum() > 0

    def test_interior_sampling_inside(self, rng):
        pts = self.terrain.sample_interior(400, rng)
        assert self.terrain.contains(pts).all()

    def test_surface_area_close_to_flat_estimate(self):
        # Flat approximation: two 2x2 sheets + 4 walls of height ~0.8.
        flat = 2 * 4.0 + 4 * (2.0 * 0.8)
        assert self.terrain.surface_area == pytest.approx(flat, rel=0.2)


class TestValidation:
    def test_bump_height_must_be_below_depth(self):
        with pytest.raises(ValueError):
            UnderwaterTerrain(depth=0.5, bump_height=0.6)

    def test_positive_footprint(self):
        with pytest.raises(ValueError):
            UnderwaterTerrain(size=(0.0, 1.0))

    def test_positive_depth(self):
        with pytest.raises(ValueError):
            UnderwaterTerrain(depth=-1.0)
