"""Failure injection: protocols under message loss."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.runtime.faults import FaultPlan, GilbertElliott
from repro.runtime.protocols import (
    MinLabelProtocol,
    ReliableProtocol,
    RetryPolicy,
    TTLFloodProtocol,
)
from repro.runtime.simulator import Simulator


@pytest.fixture
def grid_graph():
    """A 6x6 planar grid (each node linked to its 4-neighbors)."""
    pts = [[0.9 * x, 0.9 * y, 0.0] for x in range(6) for y in range(6)]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestLossMechanics:
    def test_zero_loss_identical_to_default(self, grid_graph):
        a = Simulator(grid_graph).run(TTLFloodProtocol(ttl=2))
        b = Simulator(grid_graph, loss_rate=0.0).run(TTLFloodProtocol(ttl=2))
        assert a.states == b.states

    def test_total_loss_blocks_all_communication(self, grid_graph):
        result = Simulator(
            grid_graph, loss_rate=1.0, rng=np.random.default_rng(0)
        ).run(TTLFloodProtocol(ttl=3))
        # Every node only ever hears itself.
        assert all(s["heard"] == {n} for n, s in result.states.items())

    def test_invalid_loss_rate(self, grid_graph):
        with pytest.raises(ValueError):
            Simulator(grid_graph, loss_rate=1.5)

    def test_loss_deterministic_given_rng(self, grid_graph):
        a = Simulator(
            grid_graph, loss_rate=0.3, rng=np.random.default_rng(5)
        ).run(TTLFloodProtocol(ttl=3))
        b = Simulator(
            grid_graph, loss_rate=0.3, rng=np.random.default_rng(5)
        ).run(TTLFloodProtocol(ttl=3))
        assert a.states == b.states

    def test_legacy_loss_rate_equals_uniform_fault_plan(self, grid_graph):
        """The loss_rate float is a shim over FaultPlan(loss_rate=...)."""
        a = Simulator(
            grid_graph, loss_rate=0.3, rng=np.random.default_rng(5)
        ).run(TTLFloodProtocol(ttl=3))
        b = Simulator(
            grid_graph,
            fault_plan=FaultPlan(loss_rate=0.3),
            rng=np.random.default_rng(5),
        ).run(TTLFloodProtocol(ttl=3))
        assert a == b

    def test_dropped_messages_are_counted(self, grid_graph):
        result = Simulator(
            grid_graph, loss_rate=0.5, rng=np.random.default_rng(0)
        ).run(TTLFloodProtocol(ttl=3))
        assert result.messages_dropped > 0
        # Every queued message was either delivered or observably dropped.
        assert result.messages_dropped <= result.messages_sent


class TestProtocolRobustness:
    def test_flood_counts_degrade_monotonically(self, grid_graph):
        """Higher loss -> fewer origins heard, never more."""
        heard_by_loss = {}
        for loss in (0.0, 0.3, 0.7):
            result = Simulator(
                grid_graph, loss_rate=loss, rng=np.random.default_rng(1)
            ).run(TTLFloodProtocol(ttl=3))
            heard_by_loss[loss] = sum(
                len(s["heard"]) for s in result.states.values()
            )
        assert heard_by_loss[0.0] >= heard_by_loss[0.3] >= heard_by_loss[0.7]

    def test_min_label_still_converges_under_mild_loss(self, grid_graph):
        """Label propagation re-broadcasts on every improvement, so mild
        random loss delays but rarely prevents convergence on a grid."""
        result = Simulator(
            grid_graph, loss_rate=0.2, rng=np.random.default_rng(2)
        ).run(MinLabelProtocol())
        labels = [s["label"] for s in result.states.values()]
        # The overwhelming majority agrees on the component minimum.
        assert labels.count(0) >= 0.9 * len(labels)

    def test_flood_degrades_monotonically_under_fault_plans(self, grid_graph):
        """Seeded fault plans: heard-counts never grow as loss grows."""
        totals = []
        for loss in (0.0, 0.2, 0.5, 0.9):
            result = Simulator(
                grid_graph,
                fault_plan=FaultPlan(loss_rate=loss),
                rng=np.random.default_rng(11),
            ).run(TTLFloodProtocol(ttl=3))
            totals.append(sum(len(s["heard"]) for s in result.states.values()))
        assert totals == sorted(totals, reverse=True)
        assert totals[0] > totals[-1]

    def test_burst_loss_degrades_flood(self, grid_graph):
        clean = Simulator(grid_graph).run(TTLFloodProtocol(ttl=3))
        bursty = Simulator(
            grid_graph,
            fault_plan=FaultPlan(
                burst=GilbertElliott(p_bad=0.3, p_recover=0.3, loss_bad=1.0)
            ),
            rng=np.random.default_rng(4),
        ).run(TTLFloodProtocol(ttl=3))
        n_clean = sum(len(s["heard"]) for s in clean.states.values())
        n_bursty = sum(len(s["heard"]) for s in bursty.states.values())
        assert n_bursty < n_clean
        assert bursty.messages_dropped > 0

    def test_reliable_wrapper_restores_exact_heard_sets(self, grid_graph):
        """The ack/retransmit wrapper undoes moderate loss completely."""
        base = Simulator(grid_graph).run(TTLFloodProtocol(ttl=3))
        rel = Simulator(
            grid_graph,
            fault_plan=FaultPlan(loss_rate=0.2),
            rng=np.random.default_rng(6),
        ).run(ReliableProtocol(TTLFloodProtocol(ttl=3), RetryPolicy(max_retries=8)))
        for node in base.states:
            assert base.states[node]["heard"] == rel.states[node]["heard"]
