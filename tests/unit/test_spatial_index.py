"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.geometry.spatial_index import UniformGridIndex, auto_cell_size


def brute_force_radius(points, query, radius):
    d = np.linalg.norm(points - np.asarray(query, float), axis=1)
    return set(np.flatnonzero(d <= radius).tolist())


class TestQueryRadius:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-3, 3, size=(300, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        for _ in range(25):
            q = rng.uniform(-3, 3, size=3)
            got = set(index.query_radius(q, 1.0).tolist())
            assert got == brute_force_radius(points, q, 1.0)

    def test_radius_larger_than_cell(self, rng):
        points = rng.uniform(-2, 2, size=(150, 3))
        index = UniformGridIndex(points, cell_size=0.5)
        q = np.zeros(3)
        got = set(index.query_radius(q, 1.7).tolist())
        assert got == brute_force_radius(points, q, 1.7)

    def test_empty_result_far_away(self, rng):
        points = rng.uniform(0, 1, size=(50, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        assert index.query_radius([100.0, 100.0, 100.0], 1.0).size == 0

    def test_boundary_inclusive(self):
        points = np.array([[1.0, 0.0, 0.0]])
        index = UniformGridIndex(points, cell_size=1.0)
        assert 0 in index.query_radius([0.0, 0.0, 0.0], 1.0)


class TestNeighborStructures:
    def test_pairs_match_brute_force(self, rng):
        points = rng.uniform(0, 4, size=(120, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        pairs = set(index.neighbor_pairs(1.0))
        expected = set()
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                if np.linalg.norm(points[i] - points[j]) <= 1.0:
                    expected.add((i, j))
        assert pairs == expected

    def test_neighbor_lists_exclude_self(self, rng):
        points = rng.uniform(0, 2, size=(60, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        for i, nbrs in enumerate(index.neighbor_lists(1.0)):
            assert i not in nbrs

    def test_len(self, rng):
        points = rng.uniform(0, 1, size=(17, 3))
        assert len(UniformGridIndex(points, 0.5)) == 17

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((1, 3)), cell_size=0.0)

    def test_points_view_read_only(self, rng):
        points = rng.uniform(0, 1, size=(5, 3))
        index = UniformGridIndex(points, 1.0)
        with pytest.raises(ValueError):
            index.points[0, 0] = 99.0


def brute_force_pairs_array(points, radius):
    """The (i, j)-lexicographic pair array a double loop emits."""
    diff = points[:, None, :] - points[None, :, :]
    close = np.einsum("ijk,ijk->ij", diff, diff) <= radius * radius
    i_idx, j_idx = np.nonzero(np.triu(close, k=1))
    return np.column_stack([i_idx, j_idx]).astype(np.int64)


class TestCellBoundarySweep:
    """Randomized sweeps that stress the 27-cell stencil's edge cases.

    Points are snapped onto and jittered around cell boundaries (including
    negative coordinates, where floor-division cell assignment differs from
    truncation), so pairs that straddle adjacent cells, land exactly on a
    face, or coincide are all exercised.  The vectorized sweep must emit
    byte-for-byte what the O(n^2) scan does.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pairs_match_brute_force_on_cell_faces(self, seed):
        rng = np.random.default_rng(seed)
        cell = 1.0
        n = 160
        # Snap ~half the points to exact cell-face coordinates spanning
        # negative and positive cells; jitter the rest tightly around faces.
        grid = rng.integers(-3, 4, size=(n, 3)).astype(float) * cell
        jitter = rng.uniform(-1e-9, 1e-9, size=(n, 3))
        jitter[: n // 2] = 0.0
        points = grid + jitter + rng.uniform(-0.05, 0.05, size=(n, 3)) * (
            rng.random(size=(n, 1)) < 0.5
        )
        index = UniformGridIndex(points, cell_size=cell)
        got = index.neighbor_pairs_array(1.0)
        expected = brute_force_pairs_array(points, 1.0)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("radius", [0.3, 1.0, 1.7])
    def test_pairs_match_brute_force_random_cloud(self, rng, radius):
        points = rng.uniform(-4, 4, size=(200, 3))
        index = UniformGridIndex(points, cell_size=auto_cell_size(radius))
        got = index.neighbor_pairs_array(radius)
        expected = brute_force_pairs_array(points, radius)
        np.testing.assert_array_equal(got, expected)

    def test_coincident_points_are_paired_once(self):
        points = np.array(
            [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]]
        )
        index = UniformGridIndex(points, cell_size=1.0)
        got = index.neighbor_pairs_array(1.0)
        expected = brute_force_pairs_array(points, 1.0)
        np.testing.assert_array_equal(got, expected)


class TestAutoCellSize:
    def test_matches_radius(self):
        assert auto_cell_size(0.25) == 0.25

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            auto_cell_size(0.0)
