"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.geometry.spatial_index import UniformGridIndex


def brute_force_radius(points, query, radius):
    d = np.linalg.norm(points - np.asarray(query, float), axis=1)
    return set(np.flatnonzero(d <= radius).tolist())


class TestQueryRadius:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(-3, 3, size=(300, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        for _ in range(25):
            q = rng.uniform(-3, 3, size=3)
            got = set(index.query_radius(q, 1.0).tolist())
            assert got == brute_force_radius(points, q, 1.0)

    def test_radius_larger_than_cell(self, rng):
        points = rng.uniform(-2, 2, size=(150, 3))
        index = UniformGridIndex(points, cell_size=0.5)
        q = np.zeros(3)
        got = set(index.query_radius(q, 1.7).tolist())
        assert got == brute_force_radius(points, q, 1.7)

    def test_empty_result_far_away(self, rng):
        points = rng.uniform(0, 1, size=(50, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        assert index.query_radius([100.0, 100.0, 100.0], 1.0).size == 0

    def test_boundary_inclusive(self):
        points = np.array([[1.0, 0.0, 0.0]])
        index = UniformGridIndex(points, cell_size=1.0)
        assert 0 in index.query_radius([0.0, 0.0, 0.0], 1.0)


class TestNeighborStructures:
    def test_pairs_match_brute_force(self, rng):
        points = rng.uniform(0, 4, size=(120, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        pairs = set(index.neighbor_pairs(1.0))
        expected = set()
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                if np.linalg.norm(points[i] - points[j]) <= 1.0:
                    expected.add((i, j))
        assert pairs == expected

    def test_neighbor_lists_exclude_self(self, rng):
        points = rng.uniform(0, 2, size=(60, 3))
        index = UniformGridIndex(points, cell_size=1.0)
        for i, nbrs in enumerate(index.neighbor_lists(1.0)):
            assert i not in nbrs

    def test_len(self, rng):
        points = rng.uniform(0, 1, size=(17, 3))
        assert len(UniformGridIndex(points, 0.5)) == 17

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((1, 3)), cell_size=0.0)

    def test_points_view_read_only(self, rng):
        points = rng.uniform(0, 1, size=(5, 3))
        index = UniformGridIndex(points, 1.0)
        with pytest.raises(ValueError):
            index.points[0, 0] = 99.0
