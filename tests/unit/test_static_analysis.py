"""Unit tests for the repro-lint subsystem (repro.analysis).

Every rule LOC001..CFG006 gets at least one triggering fixture and one
passing fixture; the ``# lint: allow[...]`` escape hatch is checked for
exact-code suppression; and a gate test runs the full linter over ``src/``
so new violations fail CI instead of accumulating.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import extract_config_schema, iter_rules, lint_paths, lint_source
from repro.analysis.cli import main as lint_main
from repro.analysis.context import resolve_module_name
from repro.analysis.suppressions import collect_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

CONFIG_SOURCE = textwrap.dedent(
    """
    from dataclasses import dataclass, field
    from typing import Optional

    @dataclass(frozen=True)
    class UBFConfig:
        epsilon: float = 1e-3
        ball_radius: Optional[float] = None

        @property
        def radius(self) -> float:
            return self.ball_radius or 1.0 + self.epsilon

    @dataclass(frozen=True)
    class DetectorConfig:
        ubf: UBFConfig = field(default_factory=UBFConfig)
        localization: str = "auto"

        def resolved_localization(self) -> str:
            return self.localization
    """
)


def codes(diags):
    return [d.code for d in diags]


def lint(source, module_name="repro.evaluation.example", **kw):
    return lint_source(textwrap.dedent(source), module_name=module_name, **kw)


# ---------------------------------------------------------------- LOC001


def test_loc001_flags_ground_truth_attribute_in_core():
    diags = lint(
        """
        def f(network):
            return network.positions
        """,
        module_name="repro.core.ubf",
    )
    assert codes(diags) == ["LOC001"]
    assert "positions" in diags[0].message


def test_loc001_flags_truth_and_forbidden_imports_in_surface():
    diags = lint(
        """
        from repro.shapes import library

        def f(network):
            return network.truth_boundary
        """,
        module_name="repro.surface.mesh",
    )
    assert sorted(codes(diags)).count("LOC001") == 2


def test_loc001_silent_outside_localized_layers():
    diags = lint(
        """
        from repro.shapes import library

        def f(network):
            return network.positions
        """,
        module_name="repro.evaluation.metrics",
    )
    assert "LOC001" not in codes(diags)


# ---------------------------------------------------------------- LAY002


def test_lay002_flags_upward_import():
    diags = lint(
        "from repro.surface.mesh import TriangularMesh\n",
        module_name="repro.network.graph",
    )
    assert codes(diags) == ["LAY002"]
    assert "upward" in diags[0].message


def test_lay002_flags_lateral_import_between_consumer_packages():
    diags = lint(
        "import repro.io.meshio\n",
        module_name="repro.evaluation.reporting",
    )
    assert codes(diags) == ["LAY002"]
    assert "lateral" in diags[0].message


def test_lay002_allows_downward_and_intra_package_imports():
    diags = lint(
        """
        from repro.geometry.primitives import foo
        from repro.network.graph import NetworkGraph
        from repro.core.config import UBFConfig
        """,
        module_name="repro.core.pipeline",
    )
    assert diags == []


def test_lay002_cli_may_import_everything():
    diags = lint(
        """
        from repro.evaluation.experiments import run_scenario
        from repro.core.pipeline import BoundaryDetector
        """,
        module_name="repro.cli",
    )
    assert diags == []


# ---------------------------------------------------------------- RNG003


def test_rng003_flags_module_level_calls():
    diags = lint(
        """
        import numpy as np
        import random

        JITTER = np.random.uniform(0, 1)
        SHUFFLED = random.random()
        """
    )
    assert codes(diags) == ["RNG003", "RNG003"]


def test_rng003_flags_unseeded_default_rng_and_global_seed():
    diags = lint(
        """
        import numpy as np
        from numpy.random import default_rng

        def f():
            np.random.seed(0)
            return default_rng()
        """
    )
    assert codes(diags) == ["RNG003", "RNG003"]


def test_rng003_defaults_and_decorators_execute_at_import_time():
    # ``def f(x=np.random.rand())`` runs the call when the module is
    # imported, not when f is called -- it must count as module level.
    diags = lint(
        """
        import numpy as np

        def f(x=np.random.rand()):
            return x
        """
    )
    assert codes(diags) == ["RNG003"]
    assert "module-level" in diags[0].message

    diags = lint(
        """
        import numpy as np

        def tag(value):
            def deco(fn):
                return fn
            return deco

        @tag(np.random.uniform(0, 1))
        def g():
            return 1
        """
    )
    assert codes(diags) == ["RNG003"]
    assert "module-level" in diags[0].message


def test_rng003_import_numpy_random_submodule_forms():
    # plain ``import numpy.random`` binds the root name ``numpy``
    diags = lint(
        """
        import numpy.random

        def f():
            numpy.random.seed(0)
        """
    )
    assert codes(diags) == ["RNG003"]
    assert "global RNG state" in diags[0].message
    # aliased form binds the submodule directly
    diags = lint(
        """
        import numpy.random as npr

        def f():
            npr.seed(0)
        """
    )
    assert codes(diags) == ["RNG003"]
    assert "global RNG state" in diags[0].message


def test_rng003_accepts_seeded_generators_and_cli_module():
    assert (
        lint(
            """
            import numpy as np

            def f(seed):
                return np.random.default_rng(seed)
            """
        )
        == []
    )
    # unseeded default_rng is tolerated only in repro.cli
    assert (
        lint(
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
            module_name="repro.cli",
        )
        == []
    )


# ---------------------------------------------------------------- MUT004


def test_mut004_flags_mutable_defaults():
    diags = lint(
        """
        def f(xs=[], mapping={}, items=set(), *, named=list()):
            return xs, mapping, items, named
        """
    )
    assert codes(diags) == ["MUT004"] * 4


def test_mut004_accepts_frozen_dataclass_and_none_defaults():
    diags = lint(
        """
        from repro.core.config import UBFConfig

        def f(config=UBFConfig(), xs=None, label="x"):
            return config, xs, label
        """,
        module_name="repro.core.ubf",
    )
    assert "MUT004" not in codes(diags)


# ---------------------------------------------------------------- EXC005


def test_exc005_flags_bare_and_broad_except():
    diags = lint(
        """
        def f():
            try:
                work()
            except:
                pass
            try:
                work()
            except Exception:
                return None
        """
    )
    assert codes(diags) == ["EXC005", "EXC005"]


def test_exc005_accepts_specific_and_reraising_handlers():
    diags = lint(
        """
        def f():
            try:
                work()
            except ValueError:
                pass
            try:
                work()
            except Exception:
                cleanup()
                raise
        """
    )
    assert diags == []


# ---------------------------------------------------------------- CFG006


def test_cfg006_flags_unknown_attribute_and_kwarg():
    diags = lint(
        """
        from repro.core.config import DetectorConfig, UBFConfig

        def f(config: DetectorConfig):
            bad = config.ubf.epsilonn
            return UBFConfig(ball_radus=2.0)
        """,
        config_source=CONFIG_SOURCE,
    )
    assert codes(diags) == ["CFG006", "CFG006"]
    assert "epsilonn" in diags[0].message
    assert "ball_radus" in diags[1].message


def test_cfg006_resolves_chains_properties_and_self_attributes():
    diags = lint(
        """
        from repro.core.config import DetectorConfig

        class Detector:
            def __init__(self, config: DetectorConfig):
                self.config = config

            def go(self):
                mode = self.config.resolved_localization()
                return self.config.ubf.radius, self.config.ubf.bogus
        """,
        config_source=CONFIG_SOURCE,
    )
    assert codes(diags) == ["CFG006"]
    assert "bogus" in diags[0].message


def test_cfg006_untyped_objects_are_left_alone():
    diags = lint(
        """
        def f(config):
            return config.definitely_not_a_field
        """,
        config_source=CONFIG_SOURCE,
    )
    assert diags == []


def test_cfg006_container_annotations_are_not_config_instances():
    # List[UBFConfig] holds configs but is not one; list methods must not
    # be flagged as unknown config attributes.
    diags = lint(
        """
        from typing import List, Sequence
        from repro.core.config import UBFConfig

        def f(configs: List[UBFConfig], more: "Sequence[UBFConfig]"):
            configs.append(UBFConfig())
            return configs, more
        """,
        config_source=CONFIG_SOURCE,
    )
    assert diags == []


def test_cfg006_optional_wrappers_still_resolve():
    diags = lint(
        """
        from typing import Optional, Union
        from repro.core.config import UBFConfig

        def f(a: Optional[UBFConfig], b: Union[UBFConfig, None], c: "UBFConfig"):
            return a.epsilonn, b.epsilonn, c.epsilonn
        """,
        config_source=CONFIG_SOURCE,
    )
    assert codes(diags) == ["CFG006"] * 3


def test_cfg006_schema_extraction():
    schema = extract_config_schema(CONFIG_SOURCE)
    assert set(schema.classes) == {"UBFConfig", "DetectorConfig"}
    ubf = schema.classes["UBFConfig"]
    assert {"epsilon", "ball_radius"} <= ubf.fields
    assert "radius" in ubf.members and "radius" not in ubf.fields
    assert schema.resolve_chain("DetectorConfig", "ubf") == "UBFConfig"


# ---------------------------------------------------------------- DET007


def test_det007_flags_set_iteration_forms():
    diags = lint(
        """
        GROUPS = {1, 2, 3}

        def f(xs):
            for g in GROUPS:
                print(g)
            rows = [x for x in {n for n in xs}]
            return list(set(xs)), rows
        """
    )
    assert codes(diags) == ["DET007"] * 3


def test_det007_flags_unsorted_fs_enumeration_and_accepts_sorted():
    diags = lint(
        """
        import os
        from pathlib import Path

        def f(root):
            a = os.listdir(root)
            b = list(Path(root).iterdir())
            c = sorted(os.listdir(root))
            d = sorted(Path(root).glob("*.json"))
            return a, b, c, d
        """
    )
    assert codes(diags) == ["DET007", "DET007"]
    assert "os.listdir" in diags[0].message


def test_det007_accepts_sorted_sets_and_untyped_names():
    diags = lint(
        """
        def f(xs, maybe_set):
            for x in sorted(set(xs)):
                print(x)
            for y in maybe_set:
                print(y)
            return sum(1 for _ in xs)
        """
    )
    assert diags == []


def test_det007_rebound_names_are_not_provable_sets():
    # ``items`` is assigned a set once but later rebound to a list: the
    # rule must not flag iteration over it.
    diags = lint(
        """
        def f(xs):
            items = {1, 2}
            items = sorted(items)
            for x in items:
                print(x)
        """
    )
    assert diags == []


def test_det007_silent_outside_ranked_layers():
    diags = lint(
        """
        def f(xs):
            for x in set(xs):
                print(x)
        """,
        module_name="scripts.helper",
    )
    assert diags == []


# ---------------------------------------------------------------- PAR008


def test_par008_flags_lambda_and_nested_payloads():
    diags = lint(
        """
        def drive(pool, xs, rng):
            def worker(x):
                return rng.random() * x
            pool.map(lambda x: x + 1, xs)
            return pool.map(worker, xs)
        """
    )
    assert codes(diags) == ["PAR008", "PAR008"]
    assert "lambda" in diags[0].message
    assert "worker" in diags[1].message


def test_par008_flags_global_mutation_in_worker():
    diags = lint(
        """
        CACHE = {}

        def worker(x):
            CACHE[x] = x * 2
            return CACHE[x]

        def drive(xs):
            from repro.core.parallel import run_sharded
            return run_sharded(worker, xs)
        """
    )
    assert codes(diags) == ["PAR008"]
    assert "CACHE" in diags[0].message


def test_par008_flags_initializer_and_mutator_methods():
    diags = lint(
        """
        STATE = []

        def init(payload):
            STATE.append(payload)

        def work(x):
            return x

        def drive(xs):
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(initializer=init) as pool:
                return list(pool.map(work, xs))
        """
    )
    assert codes(diags) == ["PAR008"]
    assert "STATE" in diags[0].message


def test_par008_accepts_pure_module_level_worker():
    diags = lint(
        """
        def worker(x):
            local = {}
            local[x] = x * 2
            return local[x]

        def drive(pool, xs):
            return pool.map(worker, xs)
        """
    )
    assert diags == []


# ---------------------------------------------------------------- FLT009


def test_flt009_flags_exact_float_comparisons():
    diags = lint(
        """
        def f(x, y):
            if x == 0.0:
                return 1
            return x != -1.5 or y == float(x)
        """
    )
    assert codes(diags) == ["FLT009"] * 3


def test_flt009_flags_sum_over_set():
    diags = lint(
        """
        def f(xs):
            weights = {0.1, 0.2, 0.3}
            return sum(weights)
        """
    )
    assert codes(diags) == ["FLT009"]
    assert "hash order" in diags[0].message


def test_flt009_accepts_int_comparisons_and_ordered_sums():
    diags = lint(
        """
        def f(xs, n):
            if n == 0:
                return 0.0
            return sum(sorted(xs))
        """
    )
    assert diags == []


def test_flt009_silent_outside_ranked_layers():
    diags = lint("OK = 1.0 == 1.0\n", module_name="scripts.check")
    assert diags == []


# ---------------------------------------------------------------- TRC010


def test_trc010_flags_span_without_with():
    diags = lint(
        """
        def f(tracer):
            span = tracer.span("stage")
            return span
        """
    )
    assert codes(diags) == ["TRC010"]
    assert "with" in diags[0].message


def test_trc010_accepts_with_and_returned_spans():
    diags = lint(
        """
        def f(tracer):
            with tracer.span("stage") as s:
                s.set("k", 1)

        def g(self):
            return self._tracer.span("stage")
        """
    )
    assert diags == []


def test_trc010_ignores_non_tracer_span_methods():
    diags = lint(
        """
        import re

        def f(text):
            match = re.search("x", text)
            return match.span()
        """
    )
    assert diags == []


def test_trc010_flags_metric_kind_conflict():
    diags = lint(
        """
        def f(metrics):
            metrics.counter("ubf.balls").inc()
            metrics.counter("ubf.balls").inc()
            metrics.gauge("ubf.balls").set(1)
        """
    )
    assert codes(diags) == ["TRC010"]
    assert "ubf.balls" in diags[0].message and "counter" in diags[0].message


def test_trc010_distinct_metric_names_are_fine():
    diags = lint(
        """
        def f(registry):
            registry.counter("a").inc()
            registry.gauge("b").set(1)
            registry.histogram("c").observe(2)
        """
    )
    assert diags == []


# ------------------------------------------------------- escape hatch


def test_allow_comment_suppresses_exactly_the_named_code():
    source = """
    def f(network):
        return network.positions  # lint: allow[LOC001] -- documented shim
    """
    assert lint(source, module_name="repro.core.ubf") == []
    # the same comment must NOT suppress a different rule on that line
    other = """
    def f(network, xs=[]):  # lint: allow[LOC001]
        return xs
    """
    assert codes(lint(other, module_name="repro.core.ubf")) == ["MUT004"]


def test_allow_comment_is_line_scoped():
    source = """
    def f(network):
        a = network.positions  # lint: allow[LOC001]
        return network.positions
    """
    diags = lint(source, module_name="repro.core.ubf")
    assert codes(diags) == ["LOC001"]
    assert diags[0].line == 4


def test_allow_comment_parsing_multiple_codes():
    table = collect_suppressions("x = 1  # lint: allow[LOC001, RNG003]\ny = 2\n")
    assert table == {1: frozenset({"LOC001", "RNG003"})}
    assert collect_suppressions("z = 3  # lint: allow[]\n") == {}


def test_one_line_triggering_two_rules_needs_both_codes():
    # iterating a set (DET007) while comparing floats exactly (FLT009) on
    # the same line: suppressing one code must leave the other live.
    source = """
    def f(xs):
        return [x for x in set(xs) if x == 0.5]  # lint: allow[DET007]
    """
    assert codes(lint(source)) == ["FLT009"]
    both = """
    def f(xs):
        return [x for x in set(xs) if x == 0.5]  # lint: allow[DET007, FLT009]
    """
    assert lint(both) == []


def test_unknown_code_suppression_suppresses_nothing():
    source = """
    def f(xs):
        for x in set(xs):  # lint: allow[NOPE999]
            print(x)
    """
    assert codes(lint(source)) == ["DET007"]


def test_allow_comment_works_for_det007_and_par008():
    det = """
    def f(xs):
        for x in set(xs):  # lint: allow[DET007] -- feeds a commutative reduction
            print(x)
    """
    assert lint(det) == []
    par = """
    STATE = {}

    def init(payload):
        STATE.update(payload)  # lint: allow[PAR008] -- write-once install

    def drive(xs):
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(initializer=init) as pool:
            return list(pool.map(str, xs))
    """
    assert lint(par) == []


def test_keep_suppressed_marks_but_does_not_count():
    source = """
    def f(xs):
        for x in set(xs):  # lint: allow[DET007] -- justified
            print(x)
    """
    diags = lint(source, keep_suppressed=True)
    assert codes(diags) == ["DET007"]
    assert diags[0].suppressed is True
    assert lint(source) == []


# -------------------------------------------------------------- framework


def test_module_name_resolution():
    assert resolve_module_name(SRC / "repro" / "core" / "ubf.py") == "repro.core.ubf"
    assert resolve_module_name(SRC / "repro" / "core" / "__init__.py") == "repro.core"


def test_every_registered_rule_has_code_and_summary():
    rules = iter_rules()
    assert [r.code for r in rules] == [
        "CFG006",
        "DET007",
        "EXC005",
        "FLT009",
        "LAY002",
        "LOC001",
        "MUT004",
        "PAR008",
        "RNG003",
        "TRC010",
    ]
    assert all(r.summary for r in rules)


def test_select_unknown_rule_code_raises():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", select=["NOPE999"])


def test_diagnostic_render_format(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    diags, errors = lint_paths([bad])
    assert errors == []
    assert len(diags) == 1
    rendered = diags[0].render()
    assert rendered.startswith(str(bad)) and ": MUT004 " in rendered


def test_syntax_error_reported_as_error_not_clean(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    diags, errors = lint_paths([bad])
    assert diags == []
    assert len(errors) == 1 and "syntax error" in errors[0]


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(xs=[]):\n    return xs\n")
    assert lint_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert ": MUT004 " in out
    assert lint_main(["--list-rules"]) == 0


def test_cli_exit_codes_are_the_documented_contract(tmp_path, capsys):
    """Pin the documented exit codes: 0 clean, 1 findings, 2 usage/file error."""
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(xs=[]):\n    return xs\n")
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert lint_main([str(clean)]) == 0
    assert lint_main([str(dirty)]) == 1
    assert lint_main([str(broken)]) == 2
    # file-level errors dominate findings: a dirty tree with a broken file
    # still exits 2, because the broken file is not known to be clean
    assert lint_main([str(tmp_path)]) == 2
    # usage error (unknown --select) is also 2
    assert lint_main(["--select", "NOPE999", str(clean)]) == 2
    capsys.readouterr()


def test_cli_json_format_fields_and_sorted_keys(tmp_path, capsys):
    import json as json_mod

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def f(xs=[]):  # lint: allow[MUT004] -- test fixture\n"
        "    return xs\n"
        "def g(ys=[]):\n"
        "    return ys\n"
    )
    assert lint_main(["--format", "json", str(dirty)]) == 1
    out = capsys.readouterr().out
    doc = json_mod.loads(out)
    assert doc["errors"] == []
    assert [f["suppressed"] for f in doc["findings"]] == [True, False]
    for finding in doc["findings"]:
        assert sorted(finding) == ["code", "line", "message", "path", "suppressed"]
        assert finding["code"] == "MUT004"
        assert finding["path"] == str(dirty)
    assert [f["line"] for f in doc["findings"]] == [1, 3]
    # keys are emitted sorted at every level, so output is byte-stable
    assert out == json_mod.dumps(doc, sort_keys=True, indent=2) + "\n"


def test_cli_json_format_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main(["--format", "json", str(clean)]) == 0
    suppressed_only = tmp_path / "suppressed.py"
    suppressed_only.write_text(
        "def f(xs=[]):  # lint: allow[MUT004] -- fixture\n    return xs\n"
    )
    # suppressed findings are listed but do not fail the run
    assert lint_main(["--format", "json", str(suppressed_only)]) == 0
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert lint_main(["--format", "json", str(broken)]) == 2
    capsys.readouterr()


def test_cli_rejects_unknown_select_even_with_no_py_files(tmp_path, capsys):
    # An empty tree must not let an invalid --select exit 0 as "clean".
    empty = tmp_path / "empty"
    empty.mkdir()
    assert lint_main(["--select", "NOPE999", str(empty)]) == 2
    captured = capsys.readouterr()
    assert "NOPE999" in captured.err
    assert "clean" not in captured.out
    # a valid code over the same empty tree is genuinely clean
    assert lint_main(["--select", "MUT004", str(empty)]) == 0


def test_linter_runs_with_numpy_import_blocked(tmp_path):
    """The CI lint job installs no dependencies; importing repro.analysis
    must not pull numpy in through repro/__init__.py (PEP 562 laziness)."""
    blocker = tmp_path / "numpy.py"
    blocker.write_text("raise ImportError('numpy blocked: lint must be stdlib-only')\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(tmp_path), str(SRC)])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_lazy_init_type_checking_imports_match_runtime_exports():
    """repro/__init__.py lists its exports twice: in the TYPE_CHECKING
    block (for type checkers) and in _EXPORT_MODULES (for PEP 562 runtime
    resolution).  Keep the two in lockstep."""
    import ast as ast_mod

    import repro

    tree = ast_mod.parse((SRC / "repro" / "__init__.py").read_text(encoding="utf-8"))
    type_checking_names = {}
    for node in tree.body:
        if not (
            isinstance(node, ast_mod.If)
            and isinstance(node.test, ast_mod.Name)
            and node.test.id == "TYPE_CHECKING"
        ):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast_mod.ImportFrom):
                for alias in stmt.names:
                    type_checking_names[alias.asname or alias.name] = stmt.module
    assert type_checking_names == repro._EXPORTS
    assert set(repro.__all__) == {"__version__", *repro._EXPORTS}
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


# ------------------------------------------------------------------ gate


def test_src_tree_is_clean():
    """Gate: the shipped source tree must produce zero diagnostics.

    Violations are fixed, not baselined; a justified ``# lint: allow``
    with a trailing reason is the only accepted escape.
    """
    diags, errors = lint_paths([SRC])
    assert errors == []
    assert diags == [], "\n".join(d.render() for d in diags)
