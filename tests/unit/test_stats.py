"""Unit tests for network statistics."""

from repro.network.stats import compute_network_stats


class TestNetworkStats:
    def test_counts_match_network(self, sphere_network):
        stats = compute_network_stats(sphere_network)
        assert stats.n_nodes == sphere_network.n_nodes
        assert stats.n_truth_boundary == int(sphere_network.truth_boundary.sum())
        assert stats.n_edges == sphere_network.graph.n_edges

    def test_degree_bounds(self, sphere_network):
        stats = compute_network_stats(sphere_network)
        assert stats.min_degree <= stats.avg_degree <= stats.max_degree

    def test_connected_flag(self, sphere_network):
        assert compute_network_stats(sphere_network).connected

    def test_edge_length_below_radio_range(self, sphere_network):
        stats = compute_network_stats(sphere_network)
        assert 0.0 < stats.avg_edge_length <= 1.0

    def test_as_row_renders(self, sphere_network):
        row = compute_network_stats(sphere_network).as_row()
        assert "nodes=" in row and "degree" in row
