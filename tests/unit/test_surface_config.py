"""SurfaceConfig validation and the functional pipeline wrapper."""

import pytest

from repro.surface.pipeline import (
    SurfaceBuilder,
    SurfaceConfig,
    build_boundary_surfaces,
)


class TestSurfaceConfigValidation:
    def test_defaults(self):
        config = SurfaceConfig()
        assert config.k == 4
        assert config.effective_candidate_radius == 8
        assert config.quality_retry

    def test_candidate_radius_override(self):
        assert SurfaceConfig(candidate_radius=5).effective_candidate_radius == 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SurfaceConfig(k=0)

    def test_invalid_min_landmarks(self):
        with pytest.raises(ValueError):
            SurfaceConfig(min_landmarks=3)

    def test_invalid_candidate_radius(self):
        with pytest.raises(ValueError):
            SurfaceConfig(candidate_radius=0)

    def test_invalid_finalize_rounds(self):
        with pytest.raises(ValueError):
            SurfaceConfig(finalize_rounds=0)


class TestFunctionalWrapper:
    def test_matches_builder(self, sphere_network, sphere_detection):
        direct = SurfaceBuilder().build(
            sphere_network.graph, sphere_detection.groups
        )
        functional = build_boundary_surfaces(
            sphere_network.graph, sphere_detection.groups
        )
        assert len(direct) == len(functional)
        assert direct[0].edges == functional[0].edges

    def test_quality_retry_off_single_attempt(self, sphere_network, sphere_detection):
        config = SurfaceConfig(quality_retry=False)
        meshes = SurfaceBuilder(config).build(
            sphere_network.graph, sphere_detection.groups
        )
        assert meshes  # still builds; just no k-retry pass
