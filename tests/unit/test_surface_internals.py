"""Focused unit tests for surface-construction internals."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.surface.cdm import CDMResult
from repro.surface.mesh import TriangularMesh
from repro.surface.triangulation import (
    _blocked,
    _mark_path,
    candidate_pairs,
    complete_triangulation,
)


@pytest.fixture
def ring_graph():
    n = 24
    pts = [
        [np.cos(2 * np.pi * i / n) * 3.2, np.sin(2 * np.pi * i / n) * 3.2, 0.0]
        for i in range(n)
    ]
    return NetworkGraph(np.array(pts), radio_range=1.0)


class TestMarkAndBlock:
    def test_endpoint_edges_never_block(self):
        marks = {5: {(1, 9)}}
        # Path 1 -> 5 -> 9 carries a mark of edge (1, 9): both endpoints
        # belong to the packet, so no block.
        assert not _blocked(marks, [1, 5, 9], 1, 9)

    def test_independent_edge_blocks(self):
        marks = {5: {(2, 7)}}
        assert _blocked(marks, [1, 5, 9], 1, 9)

    def test_partial_overlap_does_not_block(self):
        """An edge sharing one endpoint with the packet cannot cross it."""
        marks = {5: {(1, 7)}}
        assert not _blocked(marks, [1, 5, 9], 1, 9)

    def test_mark_path_dilates_one_hop(self, ring_graph):
        marks = {}
        from collections import defaultdict

        marks = defaultdict(set)
        members = set(range(24))
        _mark_path(marks, (0, 4), [0, 1, 2, 3, 4], ring_graph, members)
        # Intermediates 1,2,3 marked; their ring neighbors 0 and 4 dilated.
        for node in (0, 1, 2, 3, 4):
            assert (0, 4) in marks[node]
        # Far nodes unmarked.
        assert 12 not in marks


class TestCandidatePairs:
    def test_symmetric_minimum_distance(self, ring_graph):
        members = set(range(24))
        landmarks = [0, 6, 12, 18]
        pairs = candidate_pairs(ring_graph, members, landmarks, candidate_radius=12)
        # Ring distances: adjacent landmark pairs at 6 hops, opposite at 12.
        assert pairs[(0, 6)] == 6
        assert pairs[(0, 12)] == 12
        assert pairs[(6, 18)] == 12

    def test_radius_cutoff(self, ring_graph):
        members = set(range(24))
        landmarks = [0, 6, 12, 18]
        pairs = candidate_pairs(ring_graph, members, landmarks, candidate_radius=6)
        assert (0, 6) in pairs
        assert (0, 12) not in pairs


class TestCompleteTriangulationRing:
    def test_ring_with_empty_cdm_fills_ring_edges(self, ring_graph):
        """Starting from an empty CDM, short landmark pairs get connected."""
        landmarks = [0, 6, 12, 18]
        cdm = CDMResult()
        edges, paths = complete_triangulation(
            ring_graph, range(24), landmarks, cdm, candidate_radius=6
        )
        # All four adjacent landmark pairs connect (6-hop ring arcs).
        assert (0, 6) in edges
        assert (6, 12) in edges
        assert (12, 18) in edges
        assert (0, 18) in edges
        for edge in edges:
            assert paths[edge][0] in edge and paths[edge][-1] in edge


class TestMeshGroupDefaults:
    def test_edge_flip_group_defaults_to_vertices(self, ring_graph):
        """Meshes without an explicit group use their vertices for hops."""
        from repro.surface.edgeflip import edge_flip

        mesh = TriangularMesh(vertices=[0, 6, 12, 18])
        for u in (0, 6, 12, 18):
            for v in (0, 6, 12, 18):
                if u < v:
                    mesh.add_edge(u, v, hop_length=1)
        edge_flip(mesh, ring_graph)  # must not raise
        assert mesh.is_two_manifold()
