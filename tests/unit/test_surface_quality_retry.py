"""Regression tests: quality_retry must not rebuild an already-tried spacing.

Before the fix, a ``quality_retry`` attempt at ``k+1`` whose ``adaptive_k``
decay landed back on an already-built effective spacing silently rebuilt
the identical mesh (same landmarks, same CDG/CDM, same triangulation) and
re-scored it -- wasted work that also inflated the attempt counters.  Each
effective spacing must now be constructed at most once per group.
"""

import pytest

from repro.observability.tracer import TickClock, Tracer
from repro.surface.pipeline import SurfaceBuilder, SurfaceConfig


@pytest.fixture
def group(sphere_detection):
    return sphere_detection.groups[0]


def _force_decay_to_k2(monkeypatch):
    """Make every spacing >= 3 elect nothing, so all attempts decay to 2."""
    from repro.surface import landmarks as landmarks_mod

    real_elect = landmarks_mod.elect_landmarks

    def fake_elect(graph, group, k):
        if k >= 3:
            return []
        return real_elect(graph, group, k)

    monkeypatch.setattr("repro.surface.pipeline.elect_landmarks", fake_elect)


class TestDuplicateSpacingSkipped:
    def test_each_effective_spacing_constructed_at_most_once(
        self, sphere_network, group, monkeypatch
    ):
        _force_decay_to_k2(monkeypatch)
        # Report every mesh as imperfect so quality_retry always kicks in.
        monkeypatch.setattr(
            SurfaceBuilder, "_two_faced_fraction", staticmethod(lambda record: 0.5)
        )

        built_at = []
        from repro.surface import cdg as cdg_mod

        real_build_cdg = cdg_mod.build_cdg

        def counting_build_cdg(graph, group, cells):
            built_at.append(len(built_at))
            return real_build_cdg(graph, group, cells)

        monkeypatch.setattr("repro.surface.pipeline.build_cdg", counting_build_cdg)

        tracer = Tracer(clock=TickClock())
        record = SurfaceBuilder(SurfaceConfig(), tracer=tracer).build_one(
            sphere_network.graph, group
        )

        assert record is not None
        assert record.effective_k == 2
        # The initial attempt decays 4 -> 2 and builds; both quality_retry
        # attempts (requested 5 and 6) decay onto 2 and must be skipped.
        assert len(built_at) == 1

        (group_span,) = tracer.roots
        attempts = [c for c in group_span.children if c.name == "surface.attempt"]
        assert [a.attrs["outcome"] for a in attempts] == [
            "built", "duplicate_spacing", "duplicate_spacing",
        ]
        assert all(a.attrs["effective_k"] == 2 for a in attempts)

    def test_built_effective_spacings_are_unique_per_group(
        self, sphere_network, sphere_detection
    ):
        tracer = Tracer(clock=TickClock())
        builder = SurfaceBuilder(tracer=tracer)
        builder.build_records(sphere_network.graph, sphere_detection.groups)

        for group_span in tracer.roots:
            assert group_span.name == "surface.group"
            built_ks = [
                c.attrs["effective_k"]
                for c in group_span.children
                if c.name == "surface.attempt" and c.attrs.get("outcome") == "built"
            ]
            assert len(built_ks) == len(set(built_ks))

    def test_distinct_spacings_still_tried(self, sphere_network, group, monkeypatch):
        """The dedup must not suppress genuinely new spacings."""
        monkeypatch.setattr(
            SurfaceBuilder, "_two_faced_fraction", staticmethod(lambda record: 0.5)
        )
        tracer = Tracer(clock=TickClock())
        SurfaceBuilder(SurfaceConfig(), tracer=tracer).build_one(
            sphere_network.graph, group
        )
        (group_span,) = tracer.roots
        attempts = [c for c in group_span.children if c.name == "surface.attempt"]
        built_ks = [
            a.attrs["effective_k"] for a in attempts
            if a.attrs.get("outcome") == "built"
        ]
        # Requested spacings 4, 5, 6 all elect enough landmarks on the
        # outer sphere boundary, so no decay collision occurs.
        assert built_ks == [4, 5, 6]

    def test_record_keeps_effective_k(self, sphere_network, group):
        record = SurfaceBuilder().build_one(sphere_network.graph, group)
        assert record is not None
        assert record.effective_k >= 2
