"""Unit tests for boundary-surface greedy routing."""

import numpy as np
import pytest

from repro.applications.surface_routing import RouteResult, SurfaceRouter
from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh


@pytest.fixture
def octahedron_setup():
    """An octahedron mesh whose vertices double as graph nodes."""
    positions = np.array(
        [
            [1, 0, 0],
            [-1, 0, 0],
            [0, 1, 0],
            [0, -1, 0],
            [0, 0, 1],
            [0, 0, -1],
        ],
        dtype=float,
    )
    graph = NetworkGraph(positions, radio_range=1.6)
    mesh = TriangularMesh(vertices=list(range(6)), group=list(range(6)))
    edges = [
        (0, 2), (0, 3), (0, 4), (0, 5),
        (1, 2), (1, 3), (1, 4), (1, 5),
        (2, 4), (2, 5), (3, 4), (3, 5),
    ]
    for u, v in edges:
        mesh.add_edge(u, v, path=[u, v])
    return graph, mesh


class TestLandmarkRouting:
    def test_adjacent_route(self, octahedron_setup):
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        result = router.route_landmarks(0, 4)
        assert result.landmark_route == [0, 4]
        assert result.delivered

    def test_antipodal_route(self, octahedron_setup):
        """0 and 1 are antipodal (not adjacent): two hops via any equator node."""
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        result = router.route_landmarks(0, 1)
        assert result.delivered
        assert result.landmark_route[0] == 0
        assert result.landmark_route[-1] == 1
        assert len(result.landmark_route) == 3

    def test_self_route(self, octahedron_setup):
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        result = router.route_landmarks(2, 2)
        assert result.landmark_route == [2]

    def test_unknown_landmark_raises(self, octahedron_setup):
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        with pytest.raises(ValueError):
            router.route_landmarks(0, 99)

    def test_empty_mesh_rejected(self, octahedron_setup):
        graph, _ = octahedron_setup
        empty = TriangularMesh(vertices=[0, 1])
        with pytest.raises(ValueError):
            SurfaceRouter(graph, empty)

    def test_nearest_landmark_of_landmark_is_itself(self, octahedron_setup):
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        assert router.nearest_landmark(3) == 3

    def test_nearest_landmark_unreachable_none(self):
        """A node disconnected from the mesh group resolves to None."""
        positions = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0.7, 0.7, 0.2], [50, 50, 50]],
            dtype=float,
        )
        graph = NetworkGraph(positions, radio_range=1.5)
        mesh = TriangularMesh(vertices=[0, 1, 2, 3], group=[0, 1, 2, 3, 4])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v, path=[u, v])
        router = SurfaceRouter(graph, mesh)
        assert router.nearest_landmark(4) is None
        result = router.route(4, 0)
        assert not result.delivered


class TestNodeRouting:
    def test_node_route_is_walk(self, octahedron_setup):
        graph, mesh = octahedron_setup
        router = SurfaceRouter(graph, mesh)
        result = router.route(0, 1)
        assert result.delivered
        assert result.node_route[0] == 0
        assert result.node_route[-1] == 1
        for u, v in zip(result.node_route, result.node_route[1:]):
            assert graph.has_edge(u, v), (u, v)


class TestOnRealMesh:
    def test_routes_on_detected_sphere_boundary(
        self, sphere_network, sphere_detection
    ):
        from repro.surface.pipeline import SurfaceBuilder

        graph = sphere_network.graph
        mesh = SurfaceBuilder().build(graph, sphere_detection.groups)[0]
        router = SurfaceRouter(graph, mesh)
        group = mesh.group
        rng = np.random.default_rng(0)
        delivered = 0
        attempts = 10
        for _ in range(attempts):
            src, dst = rng.choice(group, size=2, replace=False)
            result = router.route(int(src), int(dst))
            if result.delivered:
                delivered += 1
                # Walk property over the boundary subgraph.
                for u, v in zip(result.node_route, result.node_route[1:]):
                    assert graph.has_edge(u, v)
        assert delivered == attempts

    def test_greedy_dominates_on_sphere(self, sphere_network, sphere_detection):
        """On a convex surface greedy should rarely need the fallback."""
        from repro.surface.pipeline import SurfaceBuilder

        graph = sphere_network.graph
        mesh = SurfaceBuilder().build(graph, sphere_detection.groups)[0]
        router = SurfaceRouter(graph, mesh)
        landmarks = mesh.vertices
        rng = np.random.default_rng(1)
        ratios = []
        for _ in range(15):
            a, b = rng.choice(landmarks, size=2, replace=False)
            result = router.route_landmarks(int(a), int(b))
            assert result.delivered
            ratios.append(result.greedy_success_ratio)
        assert np.mean(ratios) > 0.8
