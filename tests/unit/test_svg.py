"""Unit tests for the SVG renderer."""

import numpy as np
import pytest

from repro.io.svg import SvgScene, render_detection_svg
from repro.network.graph import NetworkGraph
from repro.surface.mesh import TriangularMesh


@pytest.fixture
def small_scene(rng):
    positions = rng.uniform(-1, 1, size=(10, 3))
    return SvgScene(positions, size=200), positions


class TestSvgScene:
    def test_empty_scene_valid_svg(self, small_scene):
        scene, _ = small_scene
        text = scene.to_svg()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")

    def test_nodes_rendered_as_circles(self, small_scene):
        scene, _ = small_scene
        scene.add_nodes([0, 1, 2], fill="#ff0000")
        text = scene.to_svg()
        assert text.count("<circle") == 3
        assert "#ff0000" in text

    def test_edges_rendered_as_lines(self, small_scene):
        scene, _ = small_scene
        scene.add_edges([(0, 1), (2, 3)])
        assert scene.to_svg().count("<line") == 2

    def test_mesh_rendered_as_polygons(self, small_scene):
        scene, _ = small_scene
        mesh = TriangularMesh(vertices=[0, 1, 2, 3])
        for u in range(4):
            for v in range(u + 1, 4):
                mesh.add_edge(u, v)
        scene.add_mesh(mesh)
        assert scene.to_svg().count("<polygon") == 4

    def test_coordinates_inside_canvas(self, small_scene):
        import re

        scene, _ = small_scene
        scene.add_nodes(range(10))
        text = scene.to_svg()
        coords = [
            (float(m.group(1)), float(m.group(2)))
            for m in re.finditer(r'cx="([\d.]+)" cy="([\d.]+)"', text)
        ]
        assert coords
        for x, y in coords:
            assert 0 <= x <= 200
            assert 0 <= y <= 200

    def test_route_highlight(self, small_scene):
        scene, _ = small_scene
        scene.add_route([0, 1, 2, 3])
        assert scene.to_svg().count("<line") == 3

    def test_invalid_positions_rejected(self):
        with pytest.raises(ValueError):
            SvgScene(np.zeros((3, 2)))

    def test_write(self, small_scene, tmp_path):
        scene, _ = small_scene
        scene.add_nodes([0])
        out = tmp_path / "scene.svg"
        scene.write(out)
        assert out.read_text().startswith("<svg")


class TestRenderDetection:
    def test_one_call_render(self, sphere_network, sphere_detection, tmp_path):
        out = tmp_path / "detection.svg"
        render_detection_svg(sphere_network, sphere_detection.boundary, out)
        text = out.read_text()
        assert text.count("<circle") == sphere_network.n_nodes
