"""Depth ordering and projection geometry of the SVG renderer."""

import re

import numpy as np

from repro.io.svg import SvgScene


class TestPaintersAlgorithm:
    def test_farther_elements_render_first(self):
        """With pitch=0, yaw=0 the view axis is +z: lower z renders first."""
        positions = np.array([[0, 0, -5.0], [0, 0, 5.0], [1, 1, 0.0]])
        scene = SvgScene(positions, yaw=0.0, pitch=0.0)
        scene.add_nodes([1], fill="#front")
        scene.add_nodes([0], fill="#back")
        svg = scene.to_svg()
        assert svg.index("#back") < svg.index("#front")

    def test_edge_depth_is_midpoint(self):
        positions = np.array([[0, 0, -5.0], [0, 0, 5.0], [0, 1, 4.9]])
        scene = SvgScene(positions, yaw=0.0, pitch=0.0)
        scene.add_edges([(0, 1)])  # mean depth 0
        scene.add_nodes([2], fill="#node")  # depth 4.9 -> in front
        svg = scene.to_svg()
        assert svg.index("<line") < svg.index("#node")


class TestProjectionScaling:
    def test_aspect_preserved(self):
        """A wide flat layout scales by its larger extent."""
        positions = np.array(
            [[0, 0, 0], [10.0, 0, 0], [0, 1.0, 0]], dtype=float
        )
        scene = SvgScene(positions, size=500, yaw=0.0, pitch=0.0, margin=0.0)
        scene.add_nodes([0, 1, 2])
        svg = scene.to_svg()
        xs = [float(m) for m in re.findall(r'cx="([\d.]+)"', svg)]
        assert max(xs) - min(xs) <= 500 + 1e-6
        # x-span uses the full canvas; y-span is proportionally small.
        ys = [float(m) for m in re.findall(r'cy="([\d.]+)"', svg)]
        assert (max(ys) - min(ys)) < (max(xs) - min(xs)) / 5
