"""Extra terrain coverage: wall samplers and area-table consistency."""

import numpy as np
import pytest

from repro.shapes.terrain import UnderwaterTerrain


@pytest.fixture
def terrain():
    return UnderwaterTerrain(size=(3.0, 2.0), depth=1.0, bump_count=2, seed=5)


class TestWallSampling:
    @pytest.mark.parametrize(
        "name,axis,value",
        [
            ("wall_x0", 0, 0.0),
            ("wall_x1", 0, 3.0),
            ("wall_y0", 1, 0.0),
            ("wall_y1", 1, 2.0),
        ],
    )
    def test_each_wall_lies_on_its_plane(self, terrain, name, axis, value, rng):
        pts = terrain._sample_wall(200, rng, name)
        assert np.allclose(pts[:, axis], value)
        # z within the local water column.
        x, y = pts[:, 0], pts[:, 1]
        assert (pts[:, 2] >= terrain.bottom_height(x, y) - 1e-9).all()
        assert (pts[:, 2] <= terrain.top_height(x, y) + 1e-9).all()


class TestAreaTable:
    def test_component_names(self, terrain):
        table = terrain._area_table
        assert set(table) == {
            "top",
            "bottom",
            "wall_x0",
            "wall_x1",
            "wall_y0",
            "wall_y1",
        }

    def test_rectangular_footprint_walls_scale_with_length(self, terrain):
        table = terrain._area_table
        # x-walls span length 2 (y extent), y-walls span 3 (x extent).
        assert table["wall_y0"] > table["wall_x0"]

    def test_bottom_area_at_least_footprint(self, terrain):
        # A bumpy sheet has more area than its flat footprint.
        assert terrain._area_table["bottom"] >= 3.0 * 2.0 - 1e-6
