"""Unit tests for rigid alignment helpers."""

import numpy as np
import pytest

from repro.geometry.transforms import (
    kabsch_align,
    procrustes_disparity,
    random_rotation_matrix,
)


class TestKabschAlign:
    def test_recovers_rotation_translation(self, rng):
        pts = rng.normal(size=(10, 3))
        rotation = random_rotation_matrix(rng)
        translation = rng.normal(size=3)
        moved = pts @ rotation.T + translation
        aligned, r, t = kabsch_align(pts, moved)
        assert np.allclose(aligned, moved, atol=1e-9)
        assert np.allclose(r, rotation, atol=1e-9)
        assert np.allclose(t, translation, atol=1e-9)

    def test_reflection_allowed_by_default(self, rng):
        pts = rng.normal(size=(8, 3))
        mirrored = pts * np.array([-1.0, 1.0, 1.0])
        aligned, r, _ = kabsch_align(pts, mirrored)
        assert np.allclose(aligned, mirrored, atol=1e-9)
        assert np.linalg.det(r) == pytest.approx(-1.0)

    def test_reflection_forbidden(self, rng):
        pts = rng.normal(size=(8, 3))
        mirrored = pts * np.array([-1.0, 1.0, 1.0])
        _, r, _ = kabsch_align(pts, mirrored, allow_reflection=False)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            kabsch_align(np.zeros((4, 3)), np.zeros((5, 3)))

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            kabsch_align(np.zeros((2, 3)), np.zeros((2, 3)))


class TestProcrustesDisparity:
    def test_zero_for_congruent_sets(self, rng):
        pts = rng.normal(size=(9, 3))
        moved = pts @ random_rotation_matrix(rng).T + rng.normal(size=3)
        assert procrustes_disparity(pts, moved) < 1e-9

    def test_positive_for_distorted_sets(self, rng):
        pts = rng.normal(size=(9, 3))
        assert procrustes_disparity(pts, pts + rng.normal(scale=0.5, size=pts.shape)) > 0.05


class TestRandomRotationMatrix:
    def test_orthogonal_determinant_one(self, rng):
        for _ in range(10):
            r = random_rotation_matrix(rng)
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(r) == pytest.approx(1.0)
