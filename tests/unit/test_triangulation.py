"""Unit tests for triangulation completion (Step IV)."""

import numpy as np
import pytest

from repro.network.graph import NetworkGraph
from repro.surface.cdg import build_cdg
from repro.surface.cdm import build_cdm
from repro.surface.landmarks import assign_voronoi_cells, elect_landmarks
from repro.surface.triangulation import candidate_pairs, complete_triangulation


@pytest.fixture
def sphere_boundary(sphere_network, sphere_detection):
    """The detected outer boundary group of the session sphere network."""
    return sphere_network.graph, sphere_detection.groups[0]


def _cdm_setup(graph, group, k):
    landmarks = elect_landmarks(graph, group, k)
    cells = assign_voronoi_cells(graph, group, landmarks)
    cdg = build_cdg(graph, group, cells)
    cdm = build_cdm(graph, group, cells, cdg)
    return landmarks, cells, cdg, cdm


class TestCandidatePairs:
    def test_within_radius_only(self, sphere_boundary):
        graph, group = sphere_boundary
        members = set(group)
        landmarks = elect_landmarks(graph, group, 4)
        pairs = candidate_pairs(graph, members, landmarks, candidate_radius=8)
        for (u, v), hops in pairs.items():
            assert hops <= 8
            assert u in landmarks and v in landmarks

    def test_distances_match_bfs(self, sphere_boundary):
        graph, group = sphere_boundary
        members = set(group)
        landmarks = elect_landmarks(graph, group, 4)
        pairs = candidate_pairs(graph, members, landmarks, candidate_radius=8)
        for (u, v), hops in list(pairs.items())[:10]:
            assert graph.bfs_hops([u], within=members)[v] == hops


class TestCompleteTriangulation:
    def test_superset_of_cdm(self, sphere_boundary):
        graph, group = sphere_boundary
        landmarks, cells, cdg, cdm = _cdm_setup(graph, group, 4)
        edges, paths = complete_triangulation(
            graph, group, landmarks, cdm, candidate_radius=8
        )
        assert cdm.edges <= edges
        for edge in edges:
            assert edge in paths

    def test_adds_edges_beyond_cdm(self, sphere_boundary):
        graph, group = sphere_boundary
        landmarks, cells, cdg, cdm = _cdm_setup(graph, group, 4)
        edges, _ = complete_triangulation(
            graph, group, landmarks, cdm, candidate_radius=8
        )
        assert len(edges) > len(cdm.edges)

    def test_no_edge_through_other_landmark(self, sphere_boundary):
        graph, group = sphere_boundary
        landmarks, cells, cdg, cdm = _cdm_setup(graph, group, 4)
        edges, paths = complete_triangulation(
            graph, group, landmarks, cdm, candidate_radius=8
        )
        landmark_set = set(landmarks)
        for edge, path in paths.items():
            if edge in cdm.edges:
                continue  # CDM paths predate the rule
            assert not (set(path[1:-1]) & landmark_set)

    def test_paths_stay_inside_group(self, sphere_boundary):
        graph, group = sphere_boundary
        members = set(group)
        landmarks, cells, cdg, cdm = _cdm_setup(graph, group, 4)
        _, paths = complete_triangulation(
            graph, group, landmarks, cdm, candidate_radius=8
        )
        for path in paths.values():
            assert set(path) <= members

    def test_deterministic(self, sphere_boundary):
        graph, group = sphere_boundary
        landmarks, cells, cdg, cdm = _cdm_setup(graph, group, 4)
        e1, _ = complete_triangulation(graph, group, landmarks, cdm, candidate_radius=8)
        e2, _ = complete_triangulation(graph, group, landmarks, cdm, candidate_radius=8)
        assert e1 == e2
