"""Unit tests for trilateration-based local frames."""

import numpy as np
import pytest

from repro.geometry.transforms import procrustes_disparity
from repro.network.graph import NetworkGraph
from repro.network.localization import frame_distance_residual
from repro.network.measurement import NoError, UniformAbsoluteError, measure_distances
from repro.network.trilateration import _multilaterate, trilateration_local_frame


@pytest.fixture
def dense_cluster(rng):
    pts = rng.uniform(-0.7, 0.7, size=(25, 3))
    return NetworkGraph(pts, radio_range=1.0)


class TestMultilaterate:
    def test_exact_recovery(self, rng):
        anchors = rng.uniform(-1, 1, size=(6, 3))
        target = rng.uniform(-1, 1, size=3)
        ranges = np.linalg.norm(anchors - target, axis=1)
        estimate = _multilaterate(anchors, ranges)
        assert estimate is not None
        assert np.allclose(estimate, target, atol=1e-8)

    def test_too_few_anchors(self, rng):
        anchors = rng.uniform(-1, 1, size=(3, 3))
        assert _multilaterate(anchors, np.ones(3)) is None

    def test_coplanar_anchors_rejected(self):
        anchors = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0], [0.5, 0.5, 0]],
            dtype=float,
        )
        target = np.array([0.3, 0.3, 0.5])
        ranges = np.linalg.norm(anchors - target, axis=1)
        # Coplanar anchors cannot resolve the z sign/magnitude linearly.
        result = _multilaterate(anchors, ranges)
        assert result is None or abs(result[2] - target[2]) > 1e-6


class TestTrilaterationFrame:
    def test_exact_distances_recover_geometry(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = trilateration_local_frame(dense_cluster, measured, 0)
        placed = np.asarray(frame.members, dtype=int)
        assert len(placed) >= 0.8 * (dense_cluster.degree(0) + 1)
        true_pts = dense_cluster.positions[placed]
        assert procrustes_disparity(frame.coordinates, true_pts) < 0.05

    def test_frame_structure(self, dense_cluster, rng):
        measured = measure_distances(dense_cluster, NoError(), rng)
        frame = trilateration_local_frame(dense_cluster, measured, 0)
        assert frame.members[0] == 0
        one_hop = set(int(v) for v in dense_cluster.neighbors(0))
        for member in frame.members[1 : 1 + frame.n_one_hop]:
            assert member in one_hop

    def test_isolated_node_degenerate_frame(self):
        positions = np.array([[0, 0, 0], [5, 5, 5]], dtype=float)
        graph = NetworkGraph(positions, radio_range=1.0)
        from repro.network.measurement import MeasuredDistances

        frame = trilateration_local_frame(graph, MeasuredDistances({}), 0)
        assert frame.members == [0]
        assert frame.n_one_hop == 0

    def test_collinear_neighborhood_degenerates_gracefully(self, rng):
        """A perfectly collinear neighborhood cannot seed a 3D frame."""
        positions = np.array([[0.4 * i, 0.0, 0.0] for i in range(5)])
        graph = NetworkGraph(positions, radio_range=1.0)
        measured = measure_distances(graph, NoError(), rng)
        frame = trilateration_local_frame(graph, measured, 2)
        # Seeding fails at the non-collinear third node: single-point frame.
        assert frame.members == [2]

    def test_noise_degrades_more_than_mds(self, dense_cluster):
        """Incremental placement propagates errors: residual >= MDS's."""
        from repro.network.localization import establish_local_frame

        noisy = measure_distances(
            dense_cluster, UniformAbsoluteError(0.15), np.random.default_rng(3)
        )
        tri = trilateration_local_frame(dense_cluster, noisy, 0)
        mds = establish_local_frame(dense_cluster, noisy, 0)
        assert len(tri.members) > 10, "seed failed unexpectedly at 15% noise"
        assert frame_distance_residual(dense_cluster, tri) >= 0.5 * (
            frame_distance_residual(dense_cluster, mds)
        )


class TestPipelineIntegration:
    def test_detector_with_trilateration(self, sphere_network):
        from repro import BoundaryDetector, DetectorConfig, UniformAbsoluteError
        from repro.evaluation.metrics import evaluate_detection

        config = DetectorConfig(
            error_model=UniformAbsoluteError(0.05),
            localization="trilateration",
        )
        result = BoundaryDetector(config).detect(
            sphere_network, rng=np.random.default_rng(1)
        )
        stats = evaluate_detection(sphere_network, result)
        assert stats.correct_pct > 0.75
