"""Unit tests for the Unit Ball Fitting phase."""

import numpy as np
import pytest

from repro.core.config import UBFConfig
from repro.core.ubf import (
    balls_tested_profile,
    candidates_from_outcomes,
    run_ubf,
    ubf_classify_frame,
)
from repro.network.generator import Network
from repro.network.graph import NetworkGraph
from repro.network.localization import true_local_frame
from repro.network.measurement import NoError, measure_distances


def _grid_slab_network():
    """A 5x5x3 grid slab: top/bottom layers are its z-boundary."""
    pts = []
    for x in range(5):
        for y in range(5):
            for z in range(3):
                pts.append([x * 0.55, y * 0.55, z * 0.55])
    positions = np.array(pts)
    graph = NetworkGraph(positions, radio_range=1.0)
    truth = np.array([p[2] in (0.0, 2 * 0.55) for p in pts])
    return Network(graph=graph, truth_boundary=truth, scenario="slab")


class TestRunUBF:
    def test_every_node_gets_an_outcome(self):
        net = _grid_slab_network()
        outcomes = run_ubf(net, UBFConfig())
        assert [o.node for o in outcomes] == list(range(net.n_nodes))

    def test_all_slab_nodes_are_boundary(self):
        """In a 3-layer slab every node touches the outer boundary region."""
        net = _grid_slab_network()
        outcomes = run_ubf(net, UBFConfig())
        # Top and bottom layer nodes must all be found.
        for o in outcomes:
            if net.truth_boundary[o.node]:
                assert o.is_candidate

    def test_sphere_truth_boundary_found(self, sphere_network):
        outcomes = run_ubf(sphere_network, UBFConfig())
        candidates = candidates_from_outcomes(outcomes)
        truth = sphere_network.truth_boundary_set
        missing = truth - candidates
        assert len(missing) <= 0.02 * len(truth)

    def test_deep_interior_not_flagged(self, sphere_network):
        """Nodes far (3+ hops) from the surface should not be candidates."""
        outcomes = run_ubf(sphere_network, UBFConfig())
        candidates = candidates_from_outcomes(outcomes)
        truth = sphere_network.truth_boundary_set
        hops = sphere_network.graph.bfs_hops(sorted(truth))
        deep = {n for n, h in hops.items() if h >= 3}
        assert len(candidates & deep) <= max(2, 0.02 * len(deep))

    def test_mds_without_measurements_raises(self, sphere_network):
        with pytest.raises(ValueError):
            run_ubf(sphere_network, UBFConfig(), localization="mds")

    def test_unknown_localization_rejected(self, sphere_network):
        with pytest.raises(ValueError):
            run_ubf(sphere_network, UBFConfig(), localization="nope")

    def test_mds_matches_true_under_perfect_ranging(self):
        net = _grid_slab_network()
        measured = measure_distances(net.graph, NoError(), np.random.default_rng(0))
        truth_outcomes = run_ubf(net, UBFConfig(), localization="true")
        mds_outcomes = run_ubf(
            net, UBFConfig(), measured=measured, localization="mds"
        )
        truth_set = candidates_from_outcomes(truth_outcomes)
        mds_set = candidates_from_outcomes(mds_outcomes)
        # Perfect ranging must reproduce the true-coordinate answer almost
        # exactly (MDS is exact up to rigid motion on exact distances).
        disagreement = len(truth_set ^ mds_set)
        assert disagreement <= max(1, 0.02 * net.n_nodes)

    def test_find_first_leq_exhaustive(self, sphere_network):
        first = run_ubf(sphere_network, UBFConfig(), find_first=True)
        full = run_ubf(sphere_network, UBFConfig(), find_first=False)
        for a, b in zip(first, full):
            assert a.is_candidate == b.is_candidate
            assert a.balls_tested <= b.balls_tested


class TestBallRadiusKnob:
    def test_larger_radius_detects_fewer_nodes(self, sphere_network):
        small = candidates_from_outcomes(
            run_ubf(sphere_network, UBFConfig(ball_radius=1.001))
        )
        large = candidates_from_outcomes(
            run_ubf(sphere_network, UBFConfig(ball_radius=1.8))
        )
        # A bigger empty ball is harder to fit: candidates shrink (weakly
        # for outer boundaries, strongly for small holes).
        assert len(large) <= len(small)


class TestClassifyFrame:
    def test_boundary_frame(self, sphere_network):
        truth = sorted(sphere_network.truth_boundary_set)
        frame = true_local_frame(sphere_network.graph, truth[0])
        assert ubf_classify_frame(frame, 1.001).is_boundary


class TestProfiles:
    def test_balls_tested_profile_keys(self, sphere_network):
        outcomes = run_ubf(sphere_network, UBFConfig(), find_first=False)
        profile = balls_tested_profile(outcomes)
        assert profile["mean_balls_tested"] > 0
        assert profile["max_balls_tested"] >= profile["mean_balls_tested"]
        assert profile["mean_degree"] > 0
