"""Differential tests: the vectorized UBF kernel against the naive oracle.

The two kernels of :mod:`repro.geometry.ballfit` promise *identical*
observables -- same boundary verdict, same witness ball, same
``balls_tested`` / ``points_checked`` counters -- on every input.  These
tests enforce that contract on:

* deployed networks across the paper's shape library and both ``eps``
  regimes, in both ``find_first`` modes;
* randomized synthetic neighborhoods sweeping neighbor counts, radii and
  chunk sizes;
* degenerate geometry: exactly collinear and near-collinear neighbor
  pairs, tangent (circumradius == radius) balls, and under-connected nodes;
* the candidate enumeration order itself, which the counter equality
  silently depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeploymentConfig, generate_network, scenario_by_name
from repro.core.ubf import ubf_classify_frame
from repro.geometry.ballfit import (
    BallFitResult,
    balls_through_point_pairs,
    balls_through_three_points,
    empty_ball_exists,
)
from repro.network.localization import true_local_frame

SCENARIOS = ("sphere", "bent_pipe", "two_holes", "underwater")

#: Small but non-trivial deployments -- enough geometry for two-solution,
#: tangent-adjacent, and no-candidate nodes to all occur.
DEPLOYS = {
    "sphere": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=11),
    "bent_pipe": DeploymentConfig(n_surface=150, n_interior=200, target_degree=18, seed=12),
    "two_holes": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=13),
    "underwater": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=14),
}

EPS_VALUES = (1e-3, 0.2)


def assert_results_equal(vec: BallFitResult, naive: BallFitResult) -> None:
    """Full observable equality between the two kernels' results."""
    assert vec.is_boundary == naive.is_boundary
    assert vec.balls_tested == naive.balls_tested
    assert vec.points_checked == naive.points_checked
    assert vec.witness_pair == naive.witness_pair
    if naive.empty_center is None:
        assert vec.empty_center is None
    else:
        np.testing.assert_allclose(vec.empty_center, naive.empty_center, atol=1e-9)


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario_network(request):
    name = request.param
    return generate_network(scenario_by_name(name), DEPLOYS[name], scenario=name)


class TestNetworkDifferential:
    """Kernel equality over real deployed local frames."""

    @pytest.mark.parametrize("eps", EPS_VALUES)
    @pytest.mark.parametrize("find_first", [True, False])
    def test_kernels_agree_on_network(self, scenario_network, eps, find_first):
        graph = scenario_network.graph
        radius = 1.0 + eps
        # Every 3rd node keeps the sweep exhaustive in spirit but fast.
        nodes = range(0, graph.n_nodes, 3)
        for node in nodes:
            frame = true_local_frame(graph, node)
            vec = ubf_classify_frame(
                frame, radius, find_first=find_first, kernel="vectorized"
            )
            naive = ubf_classify_frame(
                frame, radius, find_first=find_first, kernel="naive"
            )
            assert_results_equal(vec, naive)

    def test_chunk_size_is_observably_invisible(self, scenario_network):
        """Any chunking must yield the same observables (incl. early exit)."""
        graph = scenario_network.graph
        radius = 1.0 + 0.2
        frame = true_local_frame(graph, 0)
        reference = ubf_classify_frame(frame, radius, kernel="naive")
        for chunk_size in (1, 2, 7, 64, 4096):
            vec = ubf_classify_frame(
                frame, radius, kernel="vectorized", chunk_size=chunk_size
            )
            assert_results_equal(vec, reference)


class TestRandomizedDifferential:
    """Property-style sweep over synthetic neighborhoods."""

    def test_random_configurations(self):
        rng = np.random.default_rng(1234)
        for trial in range(150):
            m = int(rng.integers(2, 22))
            origin = rng.normal(size=3)
            neighbors = origin + rng.normal(scale=0.6, size=(m, 3))
            extra = int(rng.integers(0, 8))
            check = np.vstack(
                [neighbors, origin + rng.normal(scale=1.2, size=(extra, 3))]
            )
            radius = float(rng.uniform(0.8, 1.6))
            chunk_size = int(rng.integers(1, 40))
            find_first = bool(rng.integers(0, 2))
            vec = empty_ball_exists(
                origin,
                neighbors,
                radius,
                check_points=check,
                find_first=find_first,
                kernel="vectorized",
                chunk_size=chunk_size,
            )
            naive = empty_ball_exists(
                origin,
                neighbors,
                radius,
                check_points=check,
                find_first=find_first,
                kernel="naive",
            )
            assert_results_equal(vec, naive)


class TestDegenerateGeometry:
    """Edge cases where Eq. 1 has 0 or 1 solutions, or no pairs at all."""

    @pytest.mark.parametrize("kernel", ["naive", "vectorized"])
    def test_fewer_than_two_neighbors_is_conservative_boundary(self, kernel):
        out = empty_ball_exists(
            [0.0, 0.0, 0.0], [[0.5, 0.0, 0.0]], 1.0, kernel=kernel
        )
        assert out.is_boundary
        assert out.balls_tested == 0
        assert out.points_checked == 0

    def test_exactly_collinear_neighbors_yield_no_candidates(self):
        origin = np.zeros(3)
        neighbors = np.array([[0.3, 0.0, 0.0], [0.6, 0.0, 0.0], [0.9, 0.0, 0.0]])
        vec = empty_ball_exists(origin, neighbors, 1.0, kernel="vectorized")
        naive = empty_ball_exists(origin, neighbors, 1.0, kernel="naive")
        assert_results_equal(vec, naive)
        # All triples are collinear: zero candidate balls, conservative True.
        assert vec.is_boundary and vec.balls_tested == 0

    @pytest.mark.parametrize("jitter", [1e-12, 1e-9, 1e-6, 1e-4])
    def test_near_collinear_pairs(self, jitter):
        """Both kernels must cross the degeneracy threshold identically."""
        origin = np.zeros(3)
        neighbors = np.array(
            [
                [0.4, 0.0, 0.0],
                [0.8, jitter, 0.0],
                [0.2, 0.3, 0.1],
            ]
        )
        for find_first in (True, False):
            vec = empty_ball_exists(
                origin, neighbors, 1.05, find_first=find_first, kernel="vectorized"
            )
            naive = empty_ball_exists(
                origin, neighbors, 1.05, find_first=find_first, kernel="naive"
            )
            assert_results_equal(vec, naive)

    def test_tangent_pair_counts_single_candidate(self):
        """Circumradius == radius: one center, counted once by both kernels."""
        radius = 1.0
        # Equilateral-ish triangle inscribed so its circumradius equals r.
        theta = np.array([0.0, 2.0 * np.pi / 3.0, 4.0 * np.pi / 3.0])
        ring = np.column_stack(
            [radius * np.cos(theta), radius * np.sin(theta), np.zeros(3)]
        )
        origin, neighbors = ring[0], ring[1:]
        centers = balls_through_three_points(origin, neighbors[0], neighbors[1], radius)
        assert len(centers) == 1  # tangent: the circumcenter only
        vec = empty_ball_exists(
            origin, neighbors, radius, find_first=False, kernel="vectorized"
        )
        naive = empty_ball_exists(
            origin, neighbors, radius, find_first=False, kernel="naive"
        )
        assert_results_equal(vec, naive)
        assert vec.balls_tested == 1

    def test_circumradius_exceeding_radius_yields_no_ball(self):
        origin = np.array([0.0, 0.0, 0.0])
        neighbors = np.array([[3.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        vec = empty_ball_exists(origin, neighbors, 1.0, kernel="vectorized")
        naive = empty_ball_exists(origin, neighbors, 1.0, kernel="naive")
        assert_results_equal(vec, naive)
        assert vec.balls_tested == 0 and vec.is_boundary


class TestEnumerationOrder:
    """The batched Eq.-1 solver must enumerate exactly like a per-pair loop."""

    def test_candidate_order_matches_scalar_loop(self):
        rng = np.random.default_rng(77)
        for _ in range(50):
            m = int(rng.integers(2, 15))
            origin = rng.normal(size=3)
            pts = origin + rng.normal(scale=0.5, size=(m, 3))
            radius = float(rng.uniform(0.8, 1.4))

            centers, pairs = balls_through_point_pairs(origin, pts, radius)

            expected_centers, expected_pairs = [], []
            for j in range(m - 1):
                for k in range(j + 1, m):
                    for c in balls_through_three_points(origin, pts[j], pts[k], radius):
                        expected_centers.append(c)
                        expected_pairs.append((j, k))

            assert centers.shape[0] == len(expected_centers)
            assert [tuple(p) for p in pairs] == expected_pairs
            if expected_centers:
                np.testing.assert_allclose(
                    centers, np.asarray(expected_centers), atol=1e-12
                )
