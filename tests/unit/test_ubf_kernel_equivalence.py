"""Differential tests: every UBF kernel against the naive oracle.

The kernels of :mod:`repro.geometry.ballfit` promise *identical*
observables -- same boundary verdict, same witness ball, same
``balls_tested`` / ``points_checked`` counters -- on every input.  The
vectorized, batched, and native kernels additionally promise bit-equal
witness centers among themselves (they share the Eq.-1 arithmetic); the
naive scalar solver is compared with a tight tolerance.  These tests
enforce the contract on:

* deployed networks across the paper's shape library and both ``eps``
  regimes, in both ``find_first`` modes;
* randomized synthetic neighborhoods sweeping neighbor counts, radii and
  chunk sizes;
* degenerate geometry: exactly collinear and near-collinear neighbor
  pairs, tangent (circumradius == radius) balls, and under-connected nodes;
* the candidate enumeration order itself, which the counter equality
  silently depends on;
* the network-batched entry point against the per-node kernels, and the
  native C scan (when a compiler is available) against the numpy waves,
  including the compiler-less fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeploymentConfig, generate_network, scenario_by_name
from repro.core.ubf import ubf_classify_frame
from repro.geometry.ballfit import (
    BallFitResult,
    balls_through_point_pairs,
    balls_through_three_points,
    empty_ball_exists,
    empty_ball_exists_batch,
)
from repro.geometry.native import NATIVE_ENV_VAR, load_kernels, reset_kernel_cache
from repro.network.localization import true_local_frame

SCENARIOS = ("sphere", "bent_pipe", "two_holes", "underwater")

#: Small but non-trivial deployments -- enough geometry for two-solution,
#: tangent-adjacent, and no-candidate nodes to all occur.
DEPLOYS = {
    "sphere": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=11),
    "bent_pipe": DeploymentConfig(n_surface=150, n_interior=200, target_degree=18, seed=12),
    "two_holes": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=13),
    "underwater": DeploymentConfig(n_surface=150, n_interior=250, target_degree=18, seed=14),
}

EPS_VALUES = (1e-3, 0.2)


def assert_results_equal(
    vec: BallFitResult, naive: BallFitResult, *, bit_equal_centers: bool = False
) -> None:
    """Full observable equality between two kernels' results.

    ``bit_equal_centers`` asserts the witness centers byte for byte --
    valid between the vectorized / batched / native kernels, which share
    the Eq.-1 arithmetic operation for operation.  The naive scalar solver
    differs from them by ~1 ulp, hence the default tolerance comparison.
    """
    assert vec.is_boundary == naive.is_boundary
    assert vec.balls_tested == naive.balls_tested
    assert vec.points_checked == naive.points_checked
    assert vec.witness_pair == naive.witness_pair
    if naive.empty_center is None:
        assert vec.empty_center is None
    elif bit_equal_centers:
        assert np.array_equal(vec.empty_center, naive.empty_center)
    else:
        np.testing.assert_allclose(vec.empty_center, naive.empty_center, atol=1e-9)


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario_network(request):
    name = request.param
    return generate_network(scenario_by_name(name), DEPLOYS[name], scenario=name)


class TestNetworkDifferential:
    """Kernel equality over real deployed local frames."""

    @pytest.mark.parametrize("eps", EPS_VALUES)
    @pytest.mark.parametrize("find_first", [True, False])
    def test_kernels_agree_on_network(self, scenario_network, eps, find_first):
        graph = scenario_network.graph
        radius = 1.0 + eps
        # Every 3rd node keeps the sweep exhaustive in spirit but fast.
        nodes = range(0, graph.n_nodes, 3)
        for node in nodes:
            frame = true_local_frame(graph, node)
            vec = ubf_classify_frame(
                frame, radius, find_first=find_first, kernel="vectorized"
            )
            naive = ubf_classify_frame(
                frame, radius, find_first=find_first, kernel="naive"
            )
            assert_results_equal(vec, naive)

    def test_chunk_size_is_observably_invisible(self, scenario_network):
        """Any chunking must yield the same observables (incl. early exit)."""
        graph = scenario_network.graph
        radius = 1.0 + 0.2
        frame = true_local_frame(graph, 0)
        reference = ubf_classify_frame(frame, radius, kernel="naive")
        for chunk_size in (1, 2, 7, 64, 4096):
            vec = ubf_classify_frame(
                frame, radius, kernel="vectorized", chunk_size=chunk_size
            )
            assert_results_equal(vec, reference)


class TestRandomizedDifferential:
    """Property-style sweep over synthetic neighborhoods."""

    def test_random_configurations(self):
        rng = np.random.default_rng(1234)
        for trial in range(150):
            m = int(rng.integers(2, 22))
            origin = rng.normal(size=3)
            neighbors = origin + rng.normal(scale=0.6, size=(m, 3))
            extra = int(rng.integers(0, 8))
            check = np.vstack(
                [neighbors, origin + rng.normal(scale=1.2, size=(extra, 3))]
            )
            radius = float(rng.uniform(0.8, 1.6))
            chunk_size = int(rng.integers(1, 40))
            find_first = bool(rng.integers(0, 2))
            vec = empty_ball_exists(
                origin,
                neighbors,
                radius,
                check_points=check,
                find_first=find_first,
                kernel="vectorized",
                chunk_size=chunk_size,
            )
            naive = empty_ball_exists(
                origin,
                neighbors,
                radius,
                check_points=check,
                find_first=find_first,
                kernel="naive",
            )
            assert_results_equal(vec, naive)


class TestDegenerateGeometry:
    """Edge cases where Eq. 1 has 0 or 1 solutions, or no pairs at all."""

    @pytest.mark.parametrize("kernel", ["naive", "vectorized", "batched"])
    def test_fewer_than_two_neighbors_is_conservative_boundary(self, kernel):
        out = empty_ball_exists(
            [0.0, 0.0, 0.0], [[0.5, 0.0, 0.0]], 1.0, kernel=kernel
        )
        assert out.is_boundary
        assert out.balls_tested == 0
        assert out.points_checked == 0

    @pytest.mark.parametrize("kernel", ["vectorized", "batched"])
    def test_exactly_collinear_neighbors_yield_no_candidates(self, kernel):
        origin = np.zeros(3)
        neighbors = np.array([[0.3, 0.0, 0.0], [0.6, 0.0, 0.0], [0.9, 0.0, 0.0]])
        fast = empty_ball_exists(origin, neighbors, 1.0, kernel=kernel)
        naive = empty_ball_exists(origin, neighbors, 1.0, kernel="naive")
        assert_results_equal(fast, naive)
        # All triples are collinear: zero candidate balls, conservative True.
        assert fast.is_boundary and fast.balls_tested == 0

    @pytest.mark.parametrize("kernel", ["vectorized", "batched"])
    @pytest.mark.parametrize("jitter", [1e-12, 1e-9, 1e-6, 1e-4])
    def test_near_collinear_pairs(self, jitter, kernel):
        """Every kernel must cross the degeneracy threshold identically."""
        origin = np.zeros(3)
        neighbors = np.array(
            [
                [0.4, 0.0, 0.0],
                [0.8, jitter, 0.0],
                [0.2, 0.3, 0.1],
            ]
        )
        for find_first in (True, False):
            fast = empty_ball_exists(
                origin, neighbors, 1.05, find_first=find_first, kernel=kernel
            )
            naive = empty_ball_exists(
                origin, neighbors, 1.05, find_first=find_first, kernel="naive"
            )
            assert_results_equal(fast, naive)

    @pytest.mark.parametrize("kernel", ["vectorized", "batched"])
    def test_tangent_pair_counts_single_candidate(self, kernel):
        """Circumradius == radius: one center, counted once by every kernel."""
        radius = 1.0
        # Equilateral-ish triangle inscribed so its circumradius equals r.
        theta = np.array([0.0, 2.0 * np.pi / 3.0, 4.0 * np.pi / 3.0])
        ring = np.column_stack(
            [radius * np.cos(theta), radius * np.sin(theta), np.zeros(3)]
        )
        origin, neighbors = ring[0], ring[1:]
        centers = balls_through_three_points(origin, neighbors[0], neighbors[1], radius)
        assert len(centers) == 1  # tangent: the circumcenter only
        fast = empty_ball_exists(
            origin, neighbors, radius, find_first=False, kernel=kernel
        )
        naive = empty_ball_exists(
            origin, neighbors, radius, find_first=False, kernel="naive"
        )
        assert_results_equal(fast, naive)
        assert fast.balls_tested == 1

    @pytest.mark.parametrize("kernel", ["vectorized", "batched"])
    def test_circumradius_exceeding_radius_yields_no_ball(self, kernel):
        origin = np.array([0.0, 0.0, 0.0])
        neighbors = np.array([[3.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        fast = empty_ball_exists(origin, neighbors, 1.0, kernel=kernel)
        naive = empty_ball_exists(origin, neighbors, 1.0, kernel="naive")
        assert_results_equal(fast, naive)
        assert fast.balls_tested == 0 and fast.is_boundary


def _random_batch(rng, n_nodes):
    """A synthetic batch: origins, neighbor sets, and check sets."""
    origins, nbrs, checks = [], [], []
    for _ in range(n_nodes):
        deg = int(rng.integers(0, 14))
        origin = rng.uniform(-2.0, 2.0, 3)
        neighbors = origin + rng.uniform(-1.0, 1.0, (deg, 3))
        extra = int(rng.integers(0, 10))
        check = (
            np.vstack([neighbors, origin + rng.uniform(-1.5, 1.5, (extra, 3))])
            if extra
            else neighbors.copy()
        )
        origins.append(origin)
        nbrs.append(neighbors)
        checks.append(check)
    return np.array(origins).reshape(n_nodes, 3), nbrs, checks


class TestBatchedKernel:
    """The network-batched kernel against the per-node kernels."""

    @pytest.mark.parametrize("find_first", [True, False])
    def test_batched_agrees_on_network(self, scenario_network, find_first):
        graph = scenario_network.graph
        radius = 1.0 + 0.2
        frames = [
            true_local_frame(graph, node) for node in range(0, graph.n_nodes, 3)
        ]
        batch = empty_ball_exists_batch(
            np.stack([f.origin_coordinates for f in frames]),
            [f.neighbor_coordinates for f in frames],
            radius,
            check_sets=[f.collection_coordinates for f in frames],
            find_first=find_first,
        )
        for frame, got in zip(frames, batch):
            vec = ubf_classify_frame(
                frame, radius, find_first=find_first, kernel="vectorized"
            )
            assert_results_equal(got, vec, bit_equal_centers=True)

    @pytest.mark.parametrize("find_first", [True, False])
    def test_randomized_batches(self, find_first):
        rng = np.random.default_rng(4321)
        for trial in range(30):
            origins, nbrs, checks = _random_batch(rng, int(rng.integers(1, 12)))
            radius = float(rng.uniform(0.8, 1.6))
            chunk_size = int(rng.integers(1, 40))
            batch = empty_ball_exists_batch(
                origins,
                nbrs,
                radius,
                check_sets=checks,
                find_first=find_first,
                chunk_size=chunk_size,
            )
            for i, got in enumerate(batch):
                naive = empty_ball_exists(
                    origins[i],
                    nbrs[i],
                    radius,
                    check_points=checks[i],
                    find_first=find_first,
                    kernel="naive",
                )
                assert_results_equal(got, naive)

    def test_pair_block_boundaries(self, monkeypatch):
        """Forcing tiny Eq.-1 blocks must not change any observable.

        Regression guard for the multi-block path: the 100k-node bench is
        the only in-repo workload crossing ``BATCH_PAIR_BLOCK`` naturally,
        so this pins the block bookkeeping at toy scale instead.
        """
        import repro.geometry.ballfit as ballfit

        rng = np.random.default_rng(5)
        origins, nbrs, checks = _random_batch(rng, 8)
        reference = empty_ball_exists_batch(
            origins, nbrs, 1.1, check_sets=checks, find_first=False
        )
        monkeypatch.setattr(ballfit, "BATCH_PAIR_BLOCK", 17)
        small = empty_ball_exists_batch(
            origins, nbrs, 1.1, check_sets=checks, find_first=False
        )
        for got, ref in zip(small, reference):
            assert_results_equal(got, ref, bit_equal_centers=True)

    def test_batch_chunk_size_is_observably_invisible(self, scenario_network):
        graph = scenario_network.graph
        radius = 1.0 + 0.2
        frames = [true_local_frame(graph, node) for node in range(0, 40, 4)]
        origins = np.stack([f.origin_coordinates for f in frames])
        nbrs = [f.neighbor_coordinates for f in frames]
        checks = [f.collection_coordinates for f in frames]
        reference = empty_ball_exists_batch(
            origins, nbrs, radius, check_sets=checks, chunk_size=64
        )
        for chunk_size in (1, 2, 7, 4096):
            got = empty_ball_exists_batch(
                origins, nbrs, radius, check_sets=checks, chunk_size=chunk_size
            )
            for a, b in zip(got, reference):
                assert_results_equal(a, b, bit_equal_centers=True)


class TestNativeKernel:
    """The C emptiness scan against the numpy waves, plus its fallback."""

    @pytest.mark.skipif(
        load_kernels() is None, reason="no C compiler / native kernels disabled"
    )
    @pytest.mark.parametrize("find_first", [True, False])
    def test_native_bit_identical_to_batched(self, scenario_network, find_first):
        graph = scenario_network.graph
        radius = 1.0 + 0.2
        frames = [
            true_local_frame(graph, node) for node in range(0, graph.n_nodes, 5)
        ]
        origins = np.stack([f.origin_coordinates for f in frames])
        nbrs = [f.neighbor_coordinates for f in frames]
        checks = [f.collection_coordinates for f in frames]
        batched = empty_ball_exists_batch(
            origins, nbrs, radius, check_sets=checks,
            find_first=find_first, kernel="batched",
        )
        native = empty_ball_exists_batch(
            origins, nbrs, radius, check_sets=checks,
            find_first=find_first, kernel="native",
        )
        for a, b in zip(native, batched):
            assert_results_equal(a, b, bit_equal_centers=True)

    def test_native_falls_back_without_compiler(self, monkeypatch):
        """kernel='native' must stay correct when the C path is unavailable."""
        monkeypatch.setenv(NATIVE_ENV_VAR, "0")
        reset_kernel_cache()
        try:
            assert load_kernels() is None
            rng = np.random.default_rng(6)
            origins, nbrs, checks = _random_batch(rng, 6)
            fallback = empty_ball_exists_batch(
                origins, nbrs, 1.1, check_sets=checks, kernel="native"
            )
            for i, got in enumerate(fallback):
                naive = empty_ball_exists(
                    origins[i], nbrs[i], 1.1, check_points=checks[i], kernel="naive"
                )
                assert_results_equal(got, naive)
        finally:
            reset_kernel_cache()


class TestEnumerationOrder:
    """The batched Eq.-1 solver must enumerate exactly like a per-pair loop."""

    def test_candidate_order_matches_scalar_loop(self):
        rng = np.random.default_rng(77)
        for _ in range(50):
            m = int(rng.integers(2, 15))
            origin = rng.normal(size=3)
            pts = origin + rng.normal(scale=0.5, size=(m, 3))
            radius = float(rng.uniform(0.8, 1.4))

            centers, pairs = balls_through_point_pairs(origin, pts, radius)

            expected_centers, expected_pairs = [], []
            for j in range(m - 1):
                for k in range(j + 1, m):
                    for c in balls_through_three_points(origin, pts[j], pts[k], radius):
                        expected_centers.append(c)
                        expected_pairs.append((j, k))

            assert centers.shape[0] == len(expected_centers)
            assert [tuple(p) for p in pairs] == expected_pairs
            if expected_centers:
                np.testing.assert_allclose(
                    centers, np.asarray(expected_centers), atol=1e-12
                )
