"""UBF witness semantics: the reported empty ball is a valid certificate."""

import numpy as np
import pytest

from repro.core.config import UBFConfig
from repro.core.ubf import run_ubf
from repro.network.localization import true_local_frame
from repro.core.ubf import ubf_classify_frame


class TestWitnessCertificate:
    def test_witness_ball_empty_of_collection(self, sphere_network):
        """For a sample of boundary nodes, re-verify the witness ball."""
        graph = sphere_network.graph
        radius = UBFConfig().radius
        checked = 0
        for node in sorted(sphere_network.truth_boundary_set)[:25]:
            frame = true_local_frame(graph, node)
            fit = ubf_classify_frame(frame, radius)
            if fit.empty_center is None:
                continue
            checked += 1
            dists = np.linalg.norm(
                frame.collection_coordinates - fit.empty_center, axis=1
            )
            assert (dists > radius * (1 - 1e-6)).all()
            # The origin itself sits on the sphere.
            origin_d = np.linalg.norm(frame.origin_coordinates - fit.empty_center)
            assert origin_d == pytest.approx(radius, rel=1e-6)
        assert checked >= 20

    def test_witness_pair_indices_valid(self, sphere_network):
        graph = sphere_network.graph
        radius = UBFConfig().radius
        for node in sorted(sphere_network.truth_boundary_set)[:10]:
            frame = true_local_frame(graph, node)
            fit = ubf_classify_frame(frame, radius)
            if fit.witness_pair is None:
                continue
            j, k = fit.witness_pair
            assert 0 <= j < frame.n_one_hop
            assert 0 <= k < frame.n_one_hop
            assert j != k
            # Both witnesses lie on the ball surface.
            for idx in (j, k):
                d = np.linalg.norm(
                    frame.neighbor_coordinates[idx] - fit.empty_center
                )
                assert d == pytest.approx(radius, rel=1e-6)
